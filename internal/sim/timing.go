package sim

// CoreTiming models one core's timing: a local cycle clock, ROB-bounded
// runahead past incomplete memory operations, MSHR-bounded miss-level
// parallelism, an RC store buffer with out-of-order completion, and
// register-availability tracking so that address dependences on pending
// loads stall realistically.
//
// The model is deliberately at memory-op granularity: non-memory
// instructions are charged in batches at the issue width. What separates
// SC, RC and chunked execution is *which ordering constraints apply to
// memory completion*, and those are expressed through the small set of
// methods below (LoadOp/StoreSC/StoreRC/Drain).
type CoreTiming struct {
	Clock uint64 // local cycle count
	Seq   uint64 // dynamic instructions issued (including squashed work)

	cfg *Config

	// pend holds incomplete memory ops occupying the ROB, oldest first.
	pend []pendOp
	// stores holds RC store-buffer completion times, oldest first.
	stores []uint64
	// mshr holds outstanding-miss completion times (unordered).
	mshr []uint64
	// scLastDone chains SC memory-op completion in program order. Under
	// SC every memory operation must appear to perform in program order;
	// with exclusive prefetching and speculative loads the *fetch* starts
	// at issue, but the completion (visibility) point chains.
	scLastDone uint64
	// regReady[r] is when register r's value becomes available (loads
	// write their destination at completion).
	regReady [16]uint64

	// StallCycles accumulates cycles the core spent waiting (ROB full,
	// store buffer full, drains). Used for Table 6 style reporting.
	StallCycles uint64

	// Stall-cause breakdown (subsets of StallCycles, kept unconditionally —
	// a handful of adds on paths that are already stalling). RegStallCycles
	// covers address/data dependences on pending loads; ExtStallCycles the
	// externally imposed waits (commit grants, chunk slots, the engine's
	// AdvanceTo resumes).
	RobStallCycles   uint64
	SBStallCycles    uint64
	DrainStallCycles uint64
	RegStallCycles   uint64
	ExtStallCycles   uint64
	// MSHRWaitCycles accumulates the latency added by waiting for an MSHR
	// slot (miss-level-parallelism pressure). It does not stall the core
	// clock directly, so it is not part of StallCycles.
	MSHRWaitCycles uint64
}

type pendOp struct {
	seq  uint64
	done uint64
}

// NewCoreTiming returns a core clock at time 0.
func NewCoreTiming(cfg *Config) *CoreTiming {
	return &CoreTiming{cfg: cfg}
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// advance moves the clock forward to t, accounting the difference as
// stall.
func (c *CoreTiming) advance(t uint64) {
	if t > c.Clock {
		c.StallCycles += t - c.Clock
		c.Clock = t
	}
}

// advanceAs moves the clock forward to t, attributing the stall to the
// given breakdown counter as well as the aggregate.
func (c *CoreTiming) advanceAs(t uint64, cause *uint64) {
	if t > c.Clock {
		d := t - c.Clock
		c.StallCycles += d
		*cause += d
		c.Clock = t
	}
}

// ChargeALU accounts n non-memory instructions.
func (c *CoreTiming) ChargeALU(n int) {
	if n <= 0 {
		return
	}
	c.Seq += uint64(n)
	w := uint64(c.cfg.IssueWidth)
	c.Clock += (uint64(n) + w - 1) / w
}

// reap drops completed entries from the ROB and MSHR lists.
func (c *CoreTiming) reap() {
	for len(c.pend) > 0 && c.pend[0].done <= c.Clock {
		c.pend = c.pend[1:]
	}
	k := 0
	for _, d := range c.mshr {
		if d > c.Clock {
			c.mshr[k] = d
			k++
		}
	}
	c.mshr = c.mshr[:k]
	for len(c.stores) > 0 && c.stores[0] <= c.Clock {
		c.stores = c.stores[1:]
	}
}

// robAdmit stalls until the ROB has room for an op issued at the current
// Seq, then records it with the given completion time.
func (c *CoreTiming) robAdmit(done uint64) {
	c.reap()
	for len(c.pend) > 0 && c.Seq-c.pend[0].seq >= uint64(c.cfg.ROB) {
		c.advanceAs(c.pend[0].done, &c.RobStallCycles)
		c.pend = c.pend[1:]
	}
	if done > c.Clock {
		c.pend = append(c.pend, pendOp{seq: c.Seq, done: done})
	}
}

// mshrStart returns the earliest cycle a new miss can begin, consuming an
// MSHR slot through the returned completion time once the caller appends
// it via mshrFinish.
func (c *CoreTiming) mshrStart() uint64 {
	c.reap()
	start := c.Clock
	if len(c.mshr) >= c.cfg.MSHRs {
		// Wait (without stalling the core clock) for the earliest slot.
		earliest, idx := c.mshr[0], 0
		for i, d := range c.mshr[1:] {
			if d < earliest {
				earliest, idx = d, i+1
			}
		}
		c.mshr = append(c.mshr[:idx], c.mshr[idx+1:]...)
		if earliest > start {
			c.MSHRWaitCycles += earliest - start
		}
		start = maxu(start, earliest)
	}
	return start
}

func (c *CoreTiming) mshrFinish(done uint64) {
	c.mshr = append(c.mshr, done)
}

// WaitReg stalls issue until register r's value is available (address or
// store-data dependence on a pending load).
func (c *CoreTiming) WaitReg(r uint8) {
	c.advanceAs(c.regReady[r], &c.RegStallCycles)
}

// RegReady exposes the register-availability array so the interpreter can
// propagate load→ALU dependence chains (isa.RunToMemOpTimed).
func (c *CoreTiming) RegReady() *[16]uint64 { return &c.regReady }

// AdvanceTo moves the clock forward to t (a no-op if t is in the past),
// accounting the wait as stall cycles — used when a core blocked on an
// external event (a commit grant, a chunk slot) resumes.
func (c *CoreTiming) AdvanceTo(t uint64) { c.advanceAs(t, &c.ExtStallCycles) }

// SetRegReady records that register r becomes available at t (chunk
// engine loads).
func (c *CoreTiming) SetRegReady(r uint8, t uint64) { c.regReady[r] = t }

// LoadOp issues a load with the given memory latency; the value becomes
// available (and register rd ready) at the returned completion time. The
// core does not stall unless the ROB fills. isHit selects the hit path,
// which bypasses MSHRs. When scOrder is set the completion chains after
// the previous memory operation (SC program-order visibility); the fetch
// itself still starts at issue, so independent misses overlap.
func (c *CoreTiming) LoadOp(lat uint64, isHit, scOrder bool, rd uint8) uint64 {
	c.Seq++
	var done uint64
	if isHit {
		done = c.Clock + lat
	} else {
		start := c.mshrStart()
		done = start + lat
		c.mshrFinish(done)
	}
	if scOrder {
		done = maxu(done, c.scLastDone+1)
		c.scLastDone = done
	}
	c.robAdmit(done)
	c.regReady[rd] = done
	return done
}

// StoreRC issues a store under RC: it retires into the store buffer and
// completes out of order. The core stalls only when the buffer is full.
func (c *CoreTiming) StoreRC(lat uint64, isHit bool) uint64 {
	c.Seq++
	c.reap()
	for len(c.stores) >= c.cfg.StoreBuf {
		c.advanceAs(c.stores[0], &c.SBStallCycles)
		c.stores = c.stores[1:]
	}
	var done uint64
	if isHit {
		done = c.Clock + lat
	} else {
		start := c.mshrStart()
		done = start + lat
		c.mshrFinish(done)
	}
	c.stores = append(c.stores, done)
	return done
}

// StoreTSO issues a store under TSO: it retires into the FIFO store
// buffer (the core stalls only when the buffer is full), but visibility
// chains in program order among stores — the fetch starts at issue, the
// completion orders after the previous store.
func (c *CoreTiming) StoreTSO(lat uint64, isHit bool) uint64 {
	c.Seq++
	c.reap()
	for len(c.stores) >= c.cfg.StoreBuf {
		c.advanceAs(c.stores[0], &c.SBStallCycles)
		c.stores = c.stores[1:]
	}
	var fetched uint64
	if isHit {
		fetched = c.Clock + lat
	} else {
		start := c.mshrStart()
		fetched = start + lat
		c.mshrFinish(fetched)
	}
	done := maxu(fetched, c.scLastDone+1)
	c.scLastDone = done
	c.stores = append(c.stores, done)
	return done
}

// PendingStores reports the number of buffered, incomplete stores — the
// condition under which a TSO load bypasses program order (what Advanced
// RTR's violation detector watches).
func (c *CoreTiming) PendingStores() int {
	c.reap()
	return len(c.stores)
}

// StoreSC issues a store under SC: visibility chains in program order
// after the previous store, and the op occupies the ROB until visible
// (exclusive prefetching still starts the line fetch immediately, so the
// latency is paid from issue, not from the chain point).
func (c *CoreTiming) StoreSC(lat uint64, isHit bool) uint64 {
	c.Seq++
	var fetched uint64
	if isHit {
		fetched = c.Clock + lat
	} else {
		start := c.mshrStart()
		fetched = start + lat
		c.mshrFinish(fetched)
	}
	done := maxu(fetched, c.scLastDone+1)
	c.scLastDone = done
	c.robAdmit(done)
	return done
}

// Drain stalls until every outstanding memory operation (loads, stores,
// store buffer) has completed — a fence, an atomic boundary, or an
// uncached access.
func (c *CoreTiming) Drain() {
	t := c.Clock
	for _, p := range c.pend {
		t = maxu(t, p.done)
	}
	for _, d := range c.stores {
		t = maxu(t, d)
	}
	for _, d := range c.mshr {
		t = maxu(t, d)
	}
	c.advanceAs(t, &c.DrainStallCycles)
	c.pend = c.pend[:0]
	c.stores = c.stores[:0]
	c.mshr = c.mshr[:0]
	c.scLastDone = maxu(c.scLastDone, c.Clock)
}

// DrainStores stalls until buffered stores have completed (release
// semantics for RC atomics) without waiting on outstanding loads.
func (c *CoreTiming) DrainStores() {
	t := c.Clock
	for _, d := range c.stores {
		t = maxu(t, d)
	}
	c.advanceAs(t, &c.DrainStallCycles)
	c.stores = c.stores[:0]
}

// Outstanding reports whether any memory operation is still in flight.
func (c *CoreTiming) Outstanding() bool {
	c.reap()
	return len(c.pend) > 0 || len(c.stores) > 0 || len(c.mshr) > 0
}

// CompletionHorizon returns the cycle at which all currently outstanding
// operations will have completed (the chunk-completion point for the
// chunked engine).
func (c *CoreTiming) CompletionHorizon() uint64 {
	t := c.Clock
	for _, p := range c.pend {
		t = maxu(t, p.done)
	}
	for _, d := range c.stores {
		t = maxu(t, d)
	}
	for _, d := range c.mshr {
		t = maxu(t, d)
	}
	return t
}

// Reset clears in-flight state without touching the clock (used after a
// chunk squash: the squashed chunk's memory operations die with it).
func (c *CoreTiming) Reset() {
	c.pend = c.pend[:0]
	c.stores = c.stores[:0]
	c.mshr = c.mshr[:0]
	c.regReady = [16]uint64{}
}

package sim

import "testing"

func tcfg() Config {
	c := Default8()
	c.NProcs = 1
	return c
}

func TestChargeALUWidth(t *testing.T) {
	tm := NewCoreTiming(&Config{IssueWidth: 4})
	tm.ChargeALU(8)
	if tm.Clock != 2 {
		t.Fatalf("clock = %d, want 2", tm.Clock)
	}
	tm.ChargeALU(1) // ceil(1/4) = 1
	if tm.Clock != 3 {
		t.Fatalf("clock = %d, want 3", tm.Clock)
	}
	if tm.Seq != 9 {
		t.Fatalf("seq = %d, want 9", tm.Seq)
	}
}

func TestLoadHitDoesNotStall(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	before := tm.Clock
	done := tm.LoadOp(cfg.L1Lat, true, false, 1)
	if tm.Clock != before {
		t.Fatalf("hit stalled the core: %d -> %d", before, tm.Clock)
	}
	if done != before+cfg.L1Lat {
		t.Fatalf("done = %d", done)
	}
}

func TestROBBoundStallsRunahead(t *testing.T) {
	cfg := tcfg()
	cfg.ROB = 8
	tm := NewCoreTiming(&cfg)
	// One outstanding long miss, then run ahead past the ROB bound.
	tm.LoadOp(cfg.MemLat, false, false, 1)
	tm.ChargeALU(16) // Seq now well past ROB over the pending op
	tm.LoadOp(cfg.L1Lat, true, false, 2)
	if tm.Clock < cfg.MemLat {
		t.Fatalf("clock %d: ROB bound did not force waiting for the miss (%d)", tm.Clock, cfg.MemLat)
	}
	if tm.StallCycles == 0 {
		t.Fatal("no stall accounted")
	}
}

func TestMSHRLimitSerializesMisses(t *testing.T) {
	cfg := tcfg()
	cfg.MSHRs = 2
	cfg.ROB = 10000
	tm := NewCoreTiming(&cfg)
	var last uint64
	for i := 0; i < 3; i++ {
		last = tm.LoadOp(cfg.MemLat, false, false, uint8(i))
	}
	// The third miss must start only when an MSHR frees: ~2x latency.
	if last < 2*cfg.MemLat {
		t.Fatalf("third miss done at %d, want >= %d", last, 2*cfg.MemLat)
	}
}

func TestStoreBufferRCOverflowStalls(t *testing.T) {
	cfg := tcfg()
	cfg.StoreBuf = 2
	cfg.MSHRs = 64
	tm := NewCoreTiming(&cfg)
	tm.StoreRC(cfg.MemLat, false)
	tm.StoreRC(cfg.MemLat, false)
	before := tm.Clock
	tm.StoreRC(cfg.MemLat, false) // buffer full: wait for the oldest
	if tm.Clock <= before {
		t.Fatal("full store buffer did not stall")
	}
}

func TestSCChainOrdersCompletions(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	first := tm.StoreSC(cfg.MemLat, false)
	second := tm.LoadOp(cfg.L1Lat, true, true, 1)
	if second <= first {
		t.Fatalf("SC chain violated: load done %d <= store done %d", second, first)
	}
}

func TestRCLoadsCompleteOutOfOrder(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	miss := tm.LoadOp(cfg.MemLat, false, false, 1)
	hit := tm.LoadOp(cfg.L1Lat, true, false, 2)
	if hit >= miss {
		t.Fatalf("RC hit (%d) did not complete before earlier miss (%d)", hit, miss)
	}
}

func TestDrainWaitsForEverything(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	done := tm.LoadOp(cfg.MemLat, false, false, 1)
	tm.StoreRC(cfg.MemLat, false)
	tm.Drain()
	if tm.Clock < done {
		t.Fatalf("drain returned at %d before load done %d", tm.Clock, done)
	}
	if tm.Outstanding() {
		t.Fatal("outstanding ops after drain")
	}
}

func TestDrainStoresLeavesLoads(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	loadDone := tm.LoadOp(cfg.MemLat, false, false, 1)
	tm.StoreRC(cfg.L2Lat, false)
	tm.DrainStores()
	if tm.Clock >= loadDone {
		t.Fatalf("DrainStores waited for the load (%d >= %d)", tm.Clock, loadDone)
	}
}

func TestWaitRegDependence(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	done := tm.LoadOp(cfg.MemLat, false, false, 3)
	tm.WaitReg(3)
	if tm.Clock < done {
		t.Fatalf("WaitReg did not wait for the producing load")
	}
	tm.WaitReg(4) // never written: no wait
}

func TestCompletionHorizonAndReset(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	done := tm.LoadOp(cfg.MemLat, false, false, 1)
	if h := tm.CompletionHorizon(); h != done {
		t.Fatalf("horizon = %d, want %d", h, done)
	}
	tm.Reset()
	if tm.Outstanding() {
		t.Fatal("outstanding after Reset")
	}
	if h := tm.CompletionHorizon(); h != tm.Clock {
		t.Fatalf("horizon after reset = %d, want clock %d", h, tm.Clock)
	}
}

func TestAdvanceToAccountsStall(t *testing.T) {
	cfg := tcfg()
	tm := NewCoreTiming(&cfg)
	tm.AdvanceTo(100)
	if tm.Clock != 100 || tm.StallCycles != 100 {
		t.Fatalf("clock=%d stalls=%d", tm.Clock, tm.StallCycles)
	}
	tm.AdvanceTo(50) // past: no-op
	if tm.Clock != 100 {
		t.Fatal("AdvanceTo went backwards")
	}
}

package stratifier

import (
	"delorean/internal/arbiter"
)

// StratumOrder is the replay commit policy for a stratified PI log:
// within the current stratum, any processor with remaining chunk budget
// may commit (chunks in a stratum are conflict-free across processors,
// so their relative order is immaterial); the next stratum opens when
// the current one is exhausted.
type StratumOrder struct {
	strata    [][]int
	idx       int
	remaining []int
	cols      int
}

// NewStratumOrder builds the policy from a recorded stratified log for
// nprocs processors (+DMA column).
func NewStratumOrder(l *StratifiedLog, nprocs int) *StratumOrder {
	so := &StratumOrder{strata: l.Strata(), cols: nprocs + 1}
	so.loadNext()
	return so
}

func (so *StratumOrder) loadNext() {
	for so.idx < len(so.strata) {
		row := so.strata[so.idx]
		so.idx++
		total := 0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue
		}
		so.remaining = make([]int, so.cols)
		copy(so.remaining, row)
		return
	}
	so.remaining = nil
}

func (so *StratumOrder) exhausted() bool {
	for _, c := range so.remaining {
		if c > 0 {
			return false
		}
	}
	return true
}

// MayGrant permits any processor with remaining budget in the current
// stratum.
func (so *StratumOrder) MayGrant(r *arbiter.Request, _ uint64) bool {
	return r.Proc < so.cols && so.remaining != nil && so.remaining[r.Proc] > 0
}

// Granted consumes one unit of the grantee's stratum budget.
func (so *StratumOrder) Granted(r *arbiter.Request, _ uint64, _ uint64) {
	if r.Proc >= so.cols || so.remaining == nil || so.remaining[r.Proc] == 0 {
		panic("stratifier: grant outside stratum budget")
	}
	so.remaining[r.Proc]--
	if so.exhausted() {
		so.loadNext()
	}
}

// MarkDone is a no-op: the log fully determines the budgets.
func (so *StratumOrder) MarkDone(int) {}

// Head reports the DMA pseudo-processor when the current stratum requires
// a DMA commit (so the replay engine injects the next logged transfer);
// otherwise the order within a stratum is free.
func (so *StratumOrder) Head(_ uint64) (int, bool) {
	if so.remaining != nil && so.remaining[so.cols-1] > 0 {
		return so.cols - 1, true
	}
	return -1, false
}

// Done reports whether every stratum has been consumed.
func (so *StratumOrder) Done() bool { return so.remaining == nil }

var _ arbiter.Policy = (*StratumOrder)(nil)

// Package stratifier implements the PI-log stratification optimization
// (paper §4.3).
//
// Instead of one processor ID per chunk commit, the stratified PI log
// records chunk strata: vectors of per-processor counters saying how many
// chunks each processor committed since the previous stratum. Chunks
// within a stratum have no cross-processor conflicts, so replay may
// commit them in any cross-processor order (same-processor chunks
// serialize by construction) — the exact sequence need not be recorded.
//
// The hardware Stratifier module holds one chunk counter and two
// Signature Registers (SR) per processor: one accumulating the R∪W
// footprints and one only the W footprints of the processor's chunks
// since the last stratum. A new stratum is emitted when the chunk to log
// next (i) CONFLICTS with chunks committed by other processors since the
// last stratum — its writes intersect their footprints, or its reads
// intersect their writes (read-read overlap is NOT a conflict: such
// chunks may replay in any order) — or (ii) would overflow its
// processor's counter.
package stratifier

import (
	"fmt"
	"math/bits"

	"delorean/internal/bitio"
	"delorean/internal/lz77"
	"delorean/internal/signature"
)

// Stratifier builds a stratified PI log from the commit stream. The
// column count is nprocs+1: the DMA pseudo-processor gets its own column.
type Stratifier struct {
	cols     int
	maxChunk int // maximum committed chunks per processor per stratum

	counters []int
	srAll    []signature.Sig // accumulated R∪W per processor
	srW      []signature.Sig // accumulated W per processor

	strata [][]int
}

// New returns a stratifier for nprocs processors (plus the DMA column)
// allowing at most maxChunksPerStratum chunks per processor per stratum
// (the paper evaluates 1, 3 and 7).
func New(nprocs, maxChunksPerStratum int) *Stratifier {
	if maxChunksPerStratum < 1 {
		panic("stratifier: max chunks per stratum must be >= 1")
	}
	cols := nprocs + 1
	return &Stratifier{
		cols:     cols,
		maxChunk: maxChunksPerStratum,
		counters: make([]int, cols),
		srAll:    make([]signature.Sig, cols),
		srW:      make([]signature.Sig, cols),
	}
}

// Add processes one committed chunk: the committing processor (or DMA
// pseudo-ID) and its read and write signatures (DMA passes its write
// signature for both).
func (s *Stratifier) Add(proc int, rsig, wsig *signature.Sig) {
	if proc < 0 || proc >= s.cols {
		panic(fmt.Sprintf("stratifier: proc %d out of range", proc))
	}
	if s.counters[proc] >= s.maxChunk {
		s.flush()
	} else {
		// Dependence check against the other processors' SRs (without
		// updating them): my writes vs their footprints, my reads vs
		// their writes.
		for q := 0; q < s.cols; q++ {
			if q == proc {
				continue
			}
			if wsig.Intersects(&s.srAll[q]) || rsig.Intersects(&s.srW[q]) {
				s.flush()
				break
			}
		}
	}
	s.srAll[proc].Union(rsig)
	s.srAll[proc].Union(wsig)
	s.srW[proc].Union(wsig)
	s.counters[proc]++
}

func (s *Stratifier) flush() {
	any := false
	for _, c := range s.counters {
		if c > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	row := make([]int, s.cols)
	copy(row, s.counters)
	s.strata = append(s.strata, row)
	for i := range s.counters {
		s.counters[i] = 0
		s.srAll[i].Clear()
		s.srW[i].Clear()
	}
}

// Finish flushes the trailing partial stratum and returns the log.
func (s *Stratifier) Finish() *StratifiedLog {
	s.flush()
	return &StratifiedLog{cols: s.cols, maxChunk: s.maxChunk, strata: s.strata}
}

// Rebuild reconstructs a StratifiedLog from its stratum rows (recording
// deserialization). Each row must have nprocs+1 counters.
func Rebuild(nprocs, maxChunk int, strata [][]int) *StratifiedLog {
	cols := nprocs + 1
	for _, row := range strata {
		if len(row) != cols {
			panic(fmt.Sprintf("stratifier: rebuild row has %d columns, want %d", len(row), cols))
		}
	}
	return &StratifiedLog{cols: cols, maxChunk: maxChunk, strata: strata}
}

// StratifiedLog is the finished stratified PI log.
type StratifiedLog struct {
	cols     int
	maxChunk int
	strata   [][]int
}

// Strata returns the stratum vectors in order.
func (l *StratifiedLog) Strata() [][]int { return l.strata }

// Len returns the stratum count.
func (l *StratifiedLog) Len() int { return len(l.strata) }

// CounterBits returns the per-counter width.
func (l *StratifiedLog) CounterBits() int { return bits.Len(uint(l.maxChunk)) }

// RawBits returns the uncompressed size in bits: one counter per column
// per stratum.
func (l *StratifiedLog) RawBits() int {
	return len(l.strata) * l.cols * l.CounterBits()
}

// Pack returns the bit-packed log.
func (l *StratifiedLog) Pack() ([]byte, int) {
	var w bitio.Writer
	cb := l.CounterBits()
	for _, row := range l.strata {
		for _, c := range row {
			w.WriteBits(uint64(c), cb)
		}
	}
	return w.Bytes(), w.Len()
}

// CompressedBits returns the LZ77-compressed size in bits.
func (l *StratifiedLog) CompressedBits() int {
	b, _ := l.Pack()
	return lz77.CompressedBits(b)
}

// TotalChunks returns the number of chunk commits the log covers.
func (l *StratifiedLog) TotalChunks() int {
	n := 0
	for _, row := range l.strata {
		for _, c := range row {
			n += c
		}
	}
	return n
}

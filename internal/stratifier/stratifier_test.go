package stratifier

import (
	"testing"

	"delorean/internal/arbiter"
	"delorean/internal/signature"
)

func sigOf(lines ...uint32) *signature.Sig {
	var s signature.Sig
	for _, l := range lines {
		s.Insert(l)
	}
	return &s
}

func TestNonConflictingChunksShareStratum(t *testing.T) {
	s := New(4, 3)
	s.Add(0, sigOf(), sigOf(1))
	s.Add(1, sigOf(), sigOf(100))
	s.Add(2, sigOf(), sigOf(200))
	l := s.Finish()
	if l.Len() != 1 {
		t.Fatalf("strata = %d, want 1", l.Len())
	}
	row := l.Strata()[0]
	if row[0] != 1 || row[1] != 1 || row[2] != 1 || row[3] != 0 {
		t.Fatalf("row = %v", row)
	}
}

func TestConflictOpensNewStratum(t *testing.T) {
	s := New(4, 7)
	s.Add(3, sigOf(), sigOf(55))
	s.Add(0, sigOf(), sigOf(55)) // WAW with proc 3's SR
	l := s.Finish()
	if l.Len() != 2 {
		t.Fatalf("strata = %d, want 2 (conflict must split)", l.Len())
	}
	if l.Strata()[0][3] != 1 || l.Strata()[1][0] != 1 {
		t.Fatalf("strata = %v", l.Strata())
	}
}

func TestSameProcConflictDoesNotSplit(t *testing.T) {
	// Within-processor cross-chunk conflicts are fine (they serialize by
	// construction) — the paper's §4.3.
	s := New(4, 7)
	s.Add(2, sigOf(), sigOf(55))
	s.Add(2, sigOf(), sigOf(55))
	l := s.Finish()
	if l.Len() != 1 || l.Strata()[0][2] != 2 {
		t.Fatalf("strata = %v", l.Strata())
	}
}

func TestReadReadOverlapDoesNotSplit(t *testing.T) {
	// Chunks that only READ the same lines may replay in any order: no
	// stratum split (the fix that makes stratification effective on
	// read-shared workloads like barnes).
	s := New(4, 7)
	s.Add(0, sigOf(55), sigOf())
	s.Add(1, sigOf(55), sigOf())
	s.Add(2, sigOf(55), sigOf())
	l := s.Finish()
	if l.Len() != 1 {
		t.Fatalf("strata = %d, want 1 (read-read is not a conflict)", l.Len())
	}
}

func TestReadAfterWriteSplits(t *testing.T) {
	s := New(4, 7)
	s.Add(0, sigOf(), sigOf(55)) // writer
	s.Add(1, sigOf(55), sigOf()) // reader of the same line
	l := s.Finish()
	if l.Len() != 2 {
		t.Fatalf("strata = %d, want 2 (RAW must split)", l.Len())
	}
}

func TestCounterOverflowOpensNewStratum(t *testing.T) {
	s := New(4, 1)
	s.Add(0, sigOf(), sigOf(1))
	s.Add(0, sigOf(), sigOf(2))
	l := s.Finish()
	if l.Len() != 2 {
		t.Fatalf("strata = %d, want 2 (counter max 1)", l.Len())
	}
}

func TestCounterBits(t *testing.T) {
	for _, c := range []struct{ max, bits int }{{1, 1}, {3, 2}, {7, 3}} {
		l := New(8, c.max).Finish()
		if got := l.CounterBits(); got != c.bits {
			t.Errorf("max %d: %d bits, want %d", c.max, got, c.bits)
		}
	}
}

func TestRawBits(t *testing.T) {
	s := New(8, 3) // 9 columns x 2 bits
	s.Add(0, sigOf(), sigOf(1))
	s.Add(1, sigOf(), sigOf(100))
	l := s.Finish()
	if got := l.RawBits(); got != 9*2 {
		t.Fatalf("RawBits = %d, want 18", got)
	}
}

func TestTotalChunksPreserved(t *testing.T) {
	s := New(4, 3)
	n := 0
	for i := 0; i < 50; i++ {
		s.Add(i%4, sigOf(), sigOf(uint32(i*64)))
		n++
	}
	l := s.Finish()
	if l.TotalChunks() != n {
		t.Fatalf("TotalChunks = %d, want %d", l.TotalChunks(), n)
	}
}

func TestStratumOrderPolicyReplaysBudgets(t *testing.T) {
	s := New(2, 3)
	// Stratum 1: proc0 x2, proc1 x1 (no conflicts); then conflict forces
	// stratum 2 with proc1 x1.
	s.Add(0, sigOf(), sigOf(0))
	s.Add(0, sigOf(), sigOf(64))
	s.Add(1, sigOf(), sigOf(1000))
	s.Add(1, sigOf(), sigOf(64)) // WAW with proc 0's SR
	l := s.Finish()
	if l.Len() != 2 {
		t.Fatalf("strata = %d, want 2", l.Len())
	}

	so := NewStratumOrder(l, 2)
	req := func(p int) *arbiter.Request { return &arbiter.Request{Proc: p} }
	// Within stratum 1, both procs may commit in any order.
	if !so.MayGrant(req(0), 0) || !so.MayGrant(req(1), 0) {
		t.Fatal("stratum 1 budgets wrong")
	}
	so.Granted(req(1), 0, 0)
	so.Granted(req(0), 0, 1)
	if !so.MayGrant(req(0), 2) {
		t.Fatal("proc 0 second chunk denied")
	}
	if so.MayGrant(req(1), 2) {
		t.Fatal("proc 1 granted beyond stratum budget")
	}
	so.Granted(req(0), 0, 2)
	// Stratum 2 opens: only proc 1.
	if !so.MayGrant(req(1), 3) || so.MayGrant(req(0), 3) {
		t.Fatal("stratum 2 budgets wrong")
	}
	so.Granted(req(1), 0, 3)
	if !so.Done() {
		t.Fatal("policy not done after all strata")
	}
}

func TestStratumOrderGrantBeyondBudgetPanics(t *testing.T) {
	s := New(1, 1)
	s.Add(0, sigOf(), sigOf(0))
	l := s.Finish()
	so := NewStratumOrder(l, 1)
	so.Granted(&arbiter.Request{Proc: 0}, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	so.Granted(&arbiter.Request{Proc: 0}, 0, 1)
}

func TestStratumOrderDMAHead(t *testing.T) {
	s := New(1, 3)
	s.Add(1, sigOf(), sigOf(5)) // DMA column for nprocs=1 is index 1
	l := s.Finish()
	so := NewStratumOrder(l, 1)
	if head, ok := so.Head(0); !ok || head != 1 {
		t.Fatalf("Head = %d,%v, want DMA column", head, ok)
	}
}

func TestStratificationSavesSpaceOnParallelPhases(t *testing.T) {
	// 8 procs committing disjoint working sets: stratification with max 7
	// should beat the 4-bit-per-entry PI encoding substantially.
	s := New(8, 7)
	n := 800
	for i := 0; i < n; i++ {
		p := i % 8
		s.Add(p, sigOf(), sigOf(uint32(p*4096+i/8)))
	}
	l := s.Finish()
	piBits := n * 4
	if l.RawBits() >= piBits {
		t.Fatalf("stratified %d bits >= plain PI %d bits on conflict-free load", l.RawBits(), piBits)
	}
}

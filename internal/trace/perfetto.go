package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto / chrome trace_event export. The JSON Object Format is the
// lowest common denominator both chrome://tracing and ui.perfetto.dev
// load: {"traceEvents": [...]} where each event carries a phase ("X"
// complete slice, "i" instant, "C" counter, "M" metadata), a timestamp in
// microseconds, and pid/tid coordinates. Simulated cycles map 1:1 onto
// microseconds — absolute wall time is meaningless inside the simulator,
// only the cycle axis matters.

// teEvent is one trace_event entry. Field order and the sorted-key maps
// encoding/json produces keep the output byte-deterministic.
type teEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread IDs inside the exported process: processor p is tid p, and the
// machine-global rows follow the processors.
const (
	tidArbiter = 1 << 20 // arbiter / commit pipeline row
	tidSched   = 1<<20 + 1
	tidLog     = 1<<20 + 2
	tidReplay  = 1<<20 + 3 // segmented-replay interval spans (slot axis)
)

var truncNames = map[uint64]string{
	0: "size", 1: "uncached", 2: "halt", 3: "overflow", 4: "collision", 5: "cs-replay",
}

var denyNames = map[uint64]string{
	DenyConcurrency: "concurrency",
	DenyPolicy:      "policy",
	DenyProcOrder:   "proc-order",
	DenyConflict:    "conflict",
}

func sigOcc(c uint64) (rpop, wpop uint64) { return c >> 32, c & 0xffffffff }

// WriteTraceEvent renders the sink as chrome trace_event JSON. Chunk
// execution appears as complete slices on each processor's row (paired
// ChunkStart/ChunkComplete events; a chunk squashed mid-execution is
// closed at the squash point), squashes and commits as instants, arbiter
// occupancy and recorder log growth as counter tracks, and the counter
// registry as process-level metadata.
func (s *Sink) WriteTraceEvent(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev teEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Thread-name metadata.
	meta := func(tid int, name string) error {
		return emit(teEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	for p := 0; p < s.nprocs; p++ {
		if err := meta(p, fmt.Sprintf("proc %d", p)); err != nil {
			return err
		}
	}
	if err := meta(tidArbiter, "arbiter"); err != nil {
		return err
	}
	if err := meta(tidSched, "scheduler"); err != nil {
		return err
	}
	if err := meta(tidLog, "logs"); err != nil {
		return err
	}
	if err := meta(tidReplay, "replay segments"); err != nil {
		return err
	}

	// Open chunk-slice start times per processor: ChunkStart pairs with
	// the next ChunkComplete or ChunkSquash of the same seqID.
	type open struct {
		t   uint64
		seq uint64
		ok  bool
	}
	opens := make([]open, s.nprocs)
	closeSlice := func(p int32, end uint64, name string, args map[string]any) error {
		o := &opens[p]
		if !o.ok {
			return nil
		}
		o.ok = false
		dur := uint64(0)
		if end > o.t {
			dur = end - o.t
		}
		return emit(teEvent{Name: name, Cat: "chunk", Ph: "X", Ts: o.t, Dur: dur,
			Pid: 0, Tid: int(p), Args: args})
	}

	for _, ev := range s.Events() {
		var err error
		switch ev.Kind {
		case ChunkStart:
			if ev.Proc >= 0 && int(ev.Proc) < s.nprocs {
				opens[ev.Proc] = open{t: ev.Time, seq: ev.Seq, ok: true}
			}
		case ChunkComplete:
			rp, wp := sigOcc(ev.C)
			err = closeSlice(ev.Proc, ev.Time, fmt.Sprintf("chunk %d", ev.Seq), map[string]any{
				"insts": ev.A, "trunc": truncNames[ev.B], "rsig-bits": rp, "wsig-bits": wp,
			})
		case ChunkSubmit:
			err = emit(teEvent{Name: "submit", Cat: "commit", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: int(ev.Proc), Args: map[string]any{"seq": ev.Seq, "insts": ev.A}})
		case ChunkSquash:
			if int(ev.Proc) < s.nprocs && opens[ev.Proc].ok && opens[ev.Proc].seq == ev.Seq {
				if err = closeSlice(ev.Proc, ev.Time, fmt.Sprintf("chunk %d (squashed)", ev.Seq), nil); err != nil {
					break
				}
			}
			err = emit(teEvent{Name: "squash", Cat: "squash", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: int(ev.Proc), Args: map[string]any{"seq": ev.Seq, "wasted": ev.A, "by": ev.B}})
		case ChunkCommit:
			rp, wp := sigOcc(ev.C)
			err = emit(teEvent{Name: "commit", Cat: "commit", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: int(ev.Proc),
				Args: map[string]any{"seq": ev.Seq, "slot": ev.A, "insts": ev.B, "rsig-bits": rp, "wsig-bits": wp}})
		case DMACommit:
			err = emit(teEvent{Name: "dma", Cat: "commit", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: tidArbiter, Args: map[string]any{"slot": ev.A, "words": ev.B}})
		case Window:
			err = emit(teEvent{Name: "window", Cat: "sched", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: tidSched, Args: map[string]any{"eligible": ev.A}})
		case ArbQueue:
			err = emit(teEvent{Name: "arbiter occupancy", Ph: "C", Ts: ev.Time,
				Pid: 0, Tid: tidArbiter, Args: map[string]any{"queued": ev.A, "inflight": ev.B}})
		case ArbDeny:
			err = emit(teEvent{Name: "deny", Cat: "arbiter", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: tidArbiter, Args: map[string]any{"reason": denyNames[ev.A], "ready": ev.B}})
		case LogSample:
			err = emit(teEvent{Name: "log bits", Ph: "C", Ts: ev.Time,
				Pid: 0, Tid: tidLog,
				Args: map[string]any{"mem-ordering": ev.A,
					fmt.Sprintf("p%d cs", ev.Proc): ev.B, fmt.Sprintf("p%d input", ev.Proc): ev.C}})
		case Divergence:
			err = emit(teEvent{Name: "DIVERGENCE", Cat: "replay", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: int(ev.Proc) & (1<<20 - 1),
				Args: map[string]any{"seq": int64(ev.Seq), "slot": int64(ev.A)}})
		case Stall:
			err = emit(teEvent{Name: "stall", Cat: "stall", Ph: "i", Ts: ev.Time,
				Pid: 0, Tid: int(ev.Proc), Args: map[string]any{"cycles": ev.A, "why": ev.B}})
		case ReplaySegment:
			// The segment row's axis is commit slots, not cycles: each
			// interval spans [A, B) of the recording's commit order.
			verdict := "ok"
			if ev.C == 0 {
				verdict = "divergent"
			}
			dur := uint64(0)
			if ev.B > ev.A {
				dur = ev.B - ev.A
			}
			err = emit(teEvent{Name: fmt.Sprintf("interval %d", ev.Seq), Cat: "replay", Ph: "X",
				Ts: ev.A, Dur: dur, Pid: 0, Tid: tidReplay,
				Args: map[string]any{"start-slot": ev.A, "end-slot": ev.B, "verdict": verdict}})
		}
		if err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n],\n\"otherData\":"); err != nil {
		return err
	}
	other := map[string]any{}
	if s.Counters != nil {
		for _, c := range s.Counters.Snapshot() {
			other[c.Name] = c.Value
		}
	}
	b, err := json.Marshal(other)
	if err != nil {
		return err
	}
	if _, err := bw.Write(b); err != nil {
		return err
	}
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateTraceEvent parses data as chrome trace_event JSON Object Format
// and checks every event is well-formed (known phase, name, in-range
// pid/tid). It returns the event count.
func ValidateTraceEvent(data []byte) (int, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	validPh := map[string]bool{"X": true, "i": true, "I": true, "C": true, "M": true, "B": true, "E": true}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if raw, ok := ev["ph"]; !ok || json.Unmarshal(raw, &ph) != nil || !validPh[ph] {
			return 0, fmt.Errorf("trace: event %d: missing or unknown phase %s", i, ev["ph"])
		}
		if raw, ok := ev["name"]; !ok || json.Unmarshal(raw, &name) != nil || name == "" {
			return 0, fmt.Errorf("trace: event %d: missing name", i)
		}
		if ph != "M" {
			var ts float64
			if raw, ok := ev["ts"]; !ok || json.Unmarshal(raw, &ts) != nil || ts < 0 {
				return 0, fmt.Errorf("trace: event %d (%s): missing timestamp", i, name)
			}
		}
		for _, coord := range []string{"pid", "tid"} {
			var v float64
			if raw, ok := ev[coord]; !ok || json.Unmarshal(raw, &v) != nil || v < 0 {
				return 0, fmt.Errorf("trace: event %d (%s): missing %s", i, name, coord)
			}
		}
	}
	return len(doc.TraceEvents), nil
}

// Package trace is the execution observability layer: a
// zero-cost-when-disabled event sink the simulator, arbiter, recorder and
// replayer thread their lifecycle events through, plus exporters that
// turn a captured run into a Perfetto/chrome trace_event timeline and a
// counter registry snapshot.
//
// Determinism is the design constraint. Tracing is observation-only:
// every emission site reads engine state and appends to a stream, never
// the other way around, so recordings, replays and Stats are
// byte-identical with tracing enabled or disabled. Inside the engine's
// parallel windows each simulated core writes to its own per-processor
// stream (no shared state, no locks); engine-global events (commits,
// squashes-by-conflict, arbiter activity, window barriers) are emitted
// only from serial sections into a single global stream. Events() merges
// the streams by (time, stream, emission index) — a total deterministic
// order that is identical at every simulator worker count.
package trace

import (
	"sort"

	"delorean/internal/metrics"
)

// Kind classifies an event.
type Kind uint8

const (
	// ChunkStart: a core opened a chunk. Seq = chunk seqID, A = target size.
	ChunkStart Kind = iota
	// ChunkComplete: a chunk finished executing. Seq = seqID, A = retired
	// instructions, B = truncation reason, C = read/write signature
	// occupancy packed as (rpop<<32 | wpop).
	ChunkComplete
	// ChunkSubmit: the commit request left the core. Time is the arbiter
	// arrival time; Seq = seqID, A = retired instructions.
	ChunkSubmit
	// ChunkSquash: an uncommitted chunk was discarded. Seq = seqID,
	// A = instructions wasted, B = committing processor that caused it
	// (the chunk's own processor for an interrupt self-squash).
	ChunkSquash
	// ChunkCommit: a chunk committed. Seq = seqID, A = commit slot,
	// B = retired instructions, C = signature occupancy (rpop<<32 | wpop).
	ChunkCommit
	// DMACommit: a DMA transfer committed. A = commit slot, B = words.
	DMACommit
	// Window: the parallel scheduler opened a window. Time is the horizon,
	// A = eligible core count.
	Window
	// ArbQueue: arbiter occupancy sample. A = queued requests,
	// B = in-flight commits.
	ArbQueue
	// ArbDeny: the arbiter had ready requests but granted none.
	// A = deny reason (DenyReason), B = ready request count.
	ArbDeny
	// LogSample: recorder log growth at a commit. A = cumulative
	// memory-ordering raw bits (PI+CS+sizes), B = the committing
	// processor's cumulative CS/size raw bits, C = its cumulative input
	// log bits.
	LogSample
	// Divergence: replay diverged from the recording. Seq = first
	// divergent chunk seqID (or ^0), A = commit slot (or ^0).
	Divergence
	// Stall: a core left a blocked state. A = blocked cycles, B = the
	// block reason as reported by the engine.
	Stall
	// ReplaySegment: one checkpoint-delimited interval of a segmented
	// replay, emitted by the driver after the workers finish. Seq = the
	// interval index, A = start commit slot, B = end commit slot (the
	// actually reached slot for the final, unbounded interval), C = 1 if
	// the interval reproduced the recording, 0 if it diverged.
	ReplaySegment
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case ChunkStart:
		return "chunk-start"
	case ChunkComplete:
		return "chunk-complete"
	case ChunkSubmit:
		return "chunk-submit"
	case ChunkSquash:
		return "chunk-squash"
	case ChunkCommit:
		return "chunk-commit"
	case DMACommit:
		return "dma-commit"
	case Window:
		return "window"
	case ArbQueue:
		return "arb-queue"
	case ArbDeny:
		return "arb-deny"
	case LogSample:
		return "log-sample"
	case Divergence:
		return "divergence"
	case Stall:
		return "stall"
	case ReplaySegment:
		return "replay-segment"
	}
	return "event(?)"
}

// Deny reasons carried by ArbDeny events.
const (
	DenyConcurrency uint64 = iota + 1 // max concurrent commits reached
	DenyPolicy                        // ordering policy holds the head
	DenyProcOrder                     // older same-processor commit pending
	DenyConflict                      // write-set conflict with in-flight commit
)

// Event is one timeline entry. The interpretation of Seq/A/B/C depends on
// Kind (documented on the constants above).
type Event struct {
	Time uint64
	Proc int32 // subject processor; -1 for machine-global events
	Kind Kind
	Seq  uint64
	A    uint64
	B    uint64
	C    uint64
}

// Stream is an append-only event sequence. Each simulated core owns one
// (safe to append from that core's worker goroutine inside a parallel
// window); the sink's global stream must only be appended from serial
// sections.
type Stream struct {
	events []Event
}

// Emit appends an event.
func (s *Stream) Emit(ev Event) {
	if s == nil {
		return
	}
	s.events = append(s.events, ev)
}

// Len returns the number of events emitted so far.
func (s *Stream) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Sink collects one run's trace: per-processor streams for core-side
// events plus a global stream for serial-side events.
type Sink struct {
	nprocs int
	procs  []Stream
	global Stream

	// Counters is the run's counter registry: end-of-run aggregates
	// (commit/squash/truncation breakdowns, stall causes, arbiter
	// contention, log sizes) filled by the engine and recorder from
	// serial sections.
	Counters *metrics.Registry
}

// NewSink returns a sink for a machine with nprocs processors.
func NewSink(nprocs int) *Sink {
	return &Sink{nprocs: nprocs, procs: make([]Stream, nprocs), Counters: metrics.NewRegistry()}
}

// NProcs returns the processor count the sink was built for (0 for a
// nil sink).
func (s *Sink) NProcs() int {
	if s == nil {
		return 0
	}
	return s.nprocs
}

// Proc returns processor p's stream (nil when the sink itself is nil, so
// callers can hold the result unconditionally and Emit stays a no-op).
func (s *Sink) Proc(p int) *Stream {
	if s == nil {
		return nil
	}
	return &s.procs[p]
}

// Global returns the serial-section stream.
func (s *Sink) Global() *Stream {
	if s == nil {
		return nil
	}
	return &s.global
}

// Events merges all streams into one deterministic timeline, ordered by
// (time, stream, emission index) with the global stream first among ties.
// Each stream's content and internal order are themselves deterministic —
// a core's emissions depend only on its own execution, and the global
// stream is appended only from serial sections — so the key is a total
// order and the merged timeline is reproducible run to run. Scheduler
// self-description (Window events, sched.* counters) is the only content
// that varies with the simulator worker count; everything else is
// identical at every Parallel setting.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	type tagged struct {
		ev     Event
		stream int // -1 global, else processor index
		idx    int
	}
	n := len(s.global.events)
	for i := range s.procs {
		n += len(s.procs[i].events)
	}
	all := make([]tagged, 0, n)
	for i, ev := range s.global.events {
		all = append(all, tagged{ev: ev, stream: -1, idx: i})
	}
	for p := range s.procs {
		for i, ev := range s.procs[p].events {
			all = append(all, tagged{ev: ev, stream: p, idx: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.Time != b.ev.Time {
			return a.ev.Time < b.ev.Time
		}
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		return a.idx < b.idx
	})
	out := make([]Event, n)
	for i, t := range all {
		out[i] = t.ev
	}
	return out
}

package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// A nil sink (tracing disabled) must make every accessor a no-op so
// emission sites can hold stream pointers unconditionally.
func TestNilSafety(t *testing.T) {
	var s *Sink
	if s.NProcs() != 0 {
		t.Errorf("nil sink NProcs = %d", s.NProcs())
	}
	if st := s.Proc(3); st != nil {
		t.Errorf("nil sink Proc = %v", st)
	}
	if st := s.Global(); st != nil {
		t.Errorf("nil sink Global = %v", st)
	}
	if evs := s.Events(); evs != nil {
		t.Errorf("nil sink Events = %v", evs)
	}
	var st *Stream
	st.Emit(Event{Kind: ChunkStart}) // must not panic
	if st.Len() != 0 {
		t.Errorf("nil stream Len = %d", st.Len())
	}
}

// Events() must order by (time, stream, emission index) with the global
// stream first among ties, regardless of emission order across streams.
func TestEventsMergeOrder(t *testing.T) {
	s := NewSink(2)
	// Out-of-order times across streams; in-stream order preserved.
	s.Proc(1).Emit(Event{Time: 5, Proc: 1, Kind: ChunkStart, Seq: 10})
	s.Proc(0).Emit(Event{Time: 5, Proc: 0, Kind: ChunkStart, Seq: 20})
	s.Global().Emit(Event{Time: 5, Proc: -1, Kind: Window, A: 2})
	s.Global().Emit(Event{Time: 1, Proc: -1, Kind: ArbQueue})
	s.Proc(0).Emit(Event{Time: 3, Proc: 0, Kind: ChunkComplete, Seq: 20})

	evs := s.Events()
	want := []Event{
		{Time: 1, Proc: -1, Kind: ArbQueue},
		{Time: 3, Proc: 0, Kind: ChunkComplete, Seq: 20},
		{Time: 5, Proc: -1, Kind: Window, A: 2}, // global wins the time tie
		{Time: 5, Proc: 0, Kind: ChunkStart, Seq: 20},
		{Time: 5, Proc: 1, Kind: ChunkStart, Seq: 10},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("merged order:\n got %v\nwant %v", evs, want)
	}
	// Merging is read-only: a second call returns the same timeline.
	if !reflect.DeepEqual(s.Events(), want) {
		t.Fatalf("second Events() call differs")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{ChunkStart, ChunkComplete, ChunkSubmit, ChunkSquash,
		ChunkCommit, DMACommit, Window, ArbQueue, ArbDeny, LogSample,
		Divergence, Stall, ReplaySegment}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || name == "event(?)" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}

// sampleSink builds a sink exercising every event kind the exporter
// handles.
func sampleSink() *Sink {
	s := NewSink(2)
	s.Proc(0).Emit(Event{Time: 0, Proc: 0, Kind: ChunkStart, Seq: 1, A: 200})
	s.Proc(0).Emit(Event{Time: 90, Proc: 0, Kind: ChunkComplete, Seq: 1, A: 200, B: 0, C: 7<<32 | 3})
	s.Proc(0).Emit(Event{Time: 95, Proc: 0, Kind: ChunkSubmit, Seq: 1, A: 200})
	s.Proc(1).Emit(Event{Time: 0, Proc: 1, Kind: ChunkStart, Seq: 2, A: 200})
	s.Global().Emit(Event{Time: 100, Proc: -1, Kind: ArbQueue, A: 1, B: 0})
	s.Global().Emit(Event{Time: 110, Proc: -1, Kind: ArbDeny, A: DenyPolicy, B: 1})
	s.Global().Emit(Event{Time: 120, Proc: 0, Kind: ChunkCommit, Seq: 1, A: 0, B: 200, C: 7<<32 | 3})
	s.Global().Emit(Event{Time: 120, Proc: 0, Kind: LogSample, A: 3, B: 0, C: 0})
	s.Global().Emit(Event{Time: 121, Proc: 1, Kind: ChunkSquash, Seq: 2, A: 150, B: 0})
	s.Global().Emit(Event{Time: 130, Proc: -1, Kind: DMACommit, A: 1, B: 16})
	s.Global().Emit(Event{Time: 140, Proc: -1, Kind: Window, A: 2})
	s.Global().Emit(Event{Time: 150, Proc: 1, Kind: Stall, A: 30, B: 2})
	s.Global().Emit(Event{Time: 160, Proc: 1, Kind: Divergence, Seq: ^uint64(0), A: ^uint64(0)})
	s.Global().Emit(Event{Time: 170, Proc: -1, Kind: ReplaySegment, Seq: 1, A: 40, B: 80, C: 1})
	s.Counters.Set("cycles", 160)
	s.Counters.Add("chunks.committed", 1)
	return s
}

// The Perfetto export must be valid trace_event JSON, cover every
// emitted timeline event, and be byte-deterministic.
func TestWriteTraceEventRoundTrip(t *testing.T) {
	s := sampleSink()
	var buf bytes.Buffer
	if err := s.WriteTraceEvent(&buf); err != nil {
		t.Fatalf("WriteTraceEvent: %v", err)
	}
	n, err := ValidateTraceEvent(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTraceEvent: %v\n%s", err, buf.Bytes())
	}
	// 6 thread-name metadata rows (2 procs + arbiter + scheduler + logs +
	// replay segments) plus one row per timeline event except the two
	// ChunkStarts, which only open slices (one closes via complete, one
	// via squash — the squash emits both the closing slice and its
	// instant).
	want := 6 + len(s.Events()) - 2 + 1
	if n != want {
		t.Errorf("exported %d events, want %d", n, want)
	}

	var buf2 bytes.Buffer
	if err := s.WriteTraceEvent(&buf2); err != nil {
		t.Fatalf("second WriteTraceEvent: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("export is not byte-deterministic")
	}
}

func TestValidateTraceEventRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", `{`},
		{"missing array", `{"otherData":{}}`},
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`},
		{"missing name", `{"traceEvents":[{"ph":"i","ts":0,"pid":0,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`},
		{"missing tid", `{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":0}]}`},
	}
	for _, c := range cases {
		if _, err := ValidateTraceEvent([]byte(c.data)); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	if n, err := ValidateTraceEvent([]byte(`{"traceEvents":[]}`)); err != nil || n != 0 {
		t.Errorf("empty trace: n=%d err=%v", n, err)
	}
}

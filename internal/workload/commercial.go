package workload

import (
	"delorean/internal/device"
	"delorean/internal/isa"
	"delorean/internal/mem"
)

// genSJBB models SPECjbb2000 with one warehouse per processor:
// transactions against a mostly-private warehouse region, a fraction of
// cross-warehouse transactions under per-warehouse locks, periodic
// uncached I/O, plus timer interrupts and DMA traffic from the device
// model. This workload exists to exercise the input logs (interrupt,
// I/O, DMA) alongside the memory-ordering log.
func genSJBB(p Params) *Workload {
	k := newKB(p, 0x5BB)
	k.SetIntrVec("ih")
	body := 250
	iters := k.iters(body)
	k.Ldi(4, 0)
	k.Ldi(5, int64(iters))
	k.Label("loop")
	// Order-entry transaction against my warehouse (private region):
	// read an object, update it, append to an order log.
	k.Mov(0, 4)
	k.Muli(0, 0, 2654435761)
	k.Andi(0, 0, 1023)
	k.Add(0, 0, 9)
	k.Ld(6, 0, 0)
	k.Addi(6, 6, 3)
	k.St(0, 0, 6)
	k.Andi(1, 4, 255)
	k.Addi(1, 1, 2048)
	k.Add(1, 1, 9)
	k.St(1, 0, 6)
	// Index update bursts: B-tree-like nodes at a power-of-two stride
	// land in the same L1 set; bursts occasionally exceed the ways and
	// force speculative-overflow chunk truncation (the CS log's reason
	// for existing). Five of every 256 transactions touch the index.
	skipIdx := k.lbl("skipidx")
	k.Ldi(0, 256)
	k.Blt(4, 0, skipIdx) // warm-up: no index bursts in the first 256 tx
	k.Andi(2, 4, 255)
	k.Ldi(0, 5)
	k.Bge(2, 0, skipIdx)
	k.Muli(1, 4, 1024)
	k.Andi(1, 1, 16383)
	k.Addi(1, 1, 4096)
	k.Add(1, 1, 9)
	k.St(1, 0, 6)
	k.Label(skipIdx)
	k.Work(192, 3)
	// Own-warehouse summary update (1 in 16): each warehouse's summary
	// cell is also touched by the neighbor's cross-warehouse transactions
	// below, so these cells are genuinely shared.
	skipOwn := k.lbl("skipown")
	k.Andi(2, 4, 15)
	k.Ldi(0, 8)
	k.Bne(2, 0, skipOwn)
	k.Andi(1, 15, 15)
	k.Muli(1, 1, gStride)
	k.Addi(1, 1, addrLocks)
	k.Lock(1, 3, k.lbl("lko"))
	k.Muli(2, 15, isa.LineWords)
	k.Addi(2, 2, addrShared)
	k.Ld(3, 2, 0)
	k.Add(3, 3, 6)
	k.St(2, 0, 3)
	k.Unlock(1)
	k.Label(skipOwn)
	// Cross-warehouse transaction: 1 in 64 touches the next processor's
	// warehouse summary cell under its lock (~16k instructions apart).
	skipX := k.lbl("skipx")
	k.Andi(2, 4, 63)
	k.Bne(2, 10, skipX)
	k.Addi(0, 15, 1)
	k.mod2(0, 14) // neighbor warehouse
	k.Andi(1, 0, 15)
	k.Muli(1, 1, gStride)
	k.Addi(1, 1, addrLocks)
	k.Lock(1, 3, k.lbl("lk"))
	k.Muli(2, 0, isa.LineWords)
	k.Addi(2, 2, addrShared)
	k.Ld(3, 2, 0)
	k.Add(3, 3, 6)
	k.St(2, 0, 3)
	k.Unlock(1)
	k.Label(skipX)
	// Periodic uncached I/O (transaction journal flush): 1 in 128.
	skipIO := k.lbl("skipio")
	k.Andi(2, 4, 127)
	k.Bne(2, 10, skipIO)
	k.Iowr(1, 6)
	k.Iord(3, 2)
	k.Andi(0, 3, 255)
	k.Addi(0, 0, 3072)
	k.Add(0, 0, 9)
	k.St(0, 0, 3)
	k.Label(skipIO)
	// Consume the DMA ring (incoming requests).
	k.Ldi(0, addrDMARing)
	k.Andi(1, 4, 31)
	k.Add(0, 0, 1)
	k.Ld(2, 0, 0)
	k.Add(7, 7, 2)
	k.Addi(4, 4, 1)
	k.Blt(4, 5, "loop")
	k.Halt()
	// Interrupt handler: timer tick — bump a private counter.
	k.Label("ih")
	k.Muli(7, 15, privStride)
	k.Addi(7, 7, privBase+4000)
	k.Ld(8, 7, 0)
	k.Addi(8, 8, 1)
	k.St(7, 0, 8)
	k.Iret()

	prog := k.Assemble()
	devs := device.New(p.Seed ^ 0x5BB)
	horizon := uint64(p.Scale) * 4
	devs.GenerateInterrupts(k.rng.Fork(), p.NProcs, uint64(p.Scale/3)+512, horizon, 0.2)
	devs.GenerateDMA(k.rng.Fork(), addrDMARing, 2, 16, uint64(p.Scale/2)+512, horizon)

	init := func(m *mem.Memory) {
		sharedInit(p.Seed^0x5BB, 64*isa.LineWords)(m)
	}
	return &Workload{Name: "sjbb2k", Progs: replicate(p, prog), Devs: devs, Init: init}
}

// genSWeb models SPECweb2005's e-commerce workload: request processing
// with socket I/O (uncached loads), a shared read-mostly object cache
// with occasional lock-protected inserts, file data arriving via DMA,
// and network interrupts.
func genSWeb(p Params) *Workload {
	const cacheSlots = 256
	k := newKB(p, 0x53B)
	k.SetIntrVec("ih")
	body := 330
	iters := k.iters(body)
	k.Ldi(4, 0)
	k.Ldi(5, int64(iters))
	k.Label("loop")
	// Accept a request: socket read every 32nd iteration (keep-alive
	// connections in between; ~10k instructions apart).
	skipIO := k.lbl("skipio")
	k.Andi(2, 4, 31)
	k.Bne(2, 10, skipIO)
	k.Iord(6, 0) // request descriptor from the NIC
	k.Label(skipIO)
	// Parse: private computation.
	k.Work(200, 3)
	// Object-cache lookup (read-mostly shared).
	k.Mov(0, 4)
	k.Add(0, 0, 6)
	k.Muli(0, 0, 2246822519)
	k.Andi(0, 0, cacheSlots-1)
	k.Muli(1, 0, isa.LineWords)
	k.Addi(1, 1, addrShared)
	k.Ld(2, 1, 0)
	// Miss path (1 in 64): insert under the cache lock.
	skipIns := k.lbl("skipins")
	k.Andi(3, 4, 63)
	k.Ldi(8, 7)
	k.Bne(3, 8, skipIns)
	k.Ldi(3, lockAddr(9))
	k.Lock(3, 8, k.lbl("lk"))
	k.Addi(2, 2, 1)
	k.St(1, 0, 2)
	k.Unlock(3)
	k.Label(skipIns)
	// Read file data from the DMA ring and build the response privately.
	k.Ldi(0, addrDMARing)
	k.Andi(1, 4, 31)
	k.Add(0, 0, 1)
	k.Ld(3, 0, 0)
	k.Add(2, 2, 3)
	k.Andi(1, 4, 511)
	k.Add(1, 1, 9)
	k.St(1, 0, 2)
	k.Work(80, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 5, "loop")
	k.Halt()
	// Interrupt handler: NIC event — record into a private ring.
	k.Label("ih")
	k.Muli(7, 15, privStride)
	k.Addi(7, 7, privBase+4096)
	k.Ld(8, 7, 0)
	k.Add(8, 8, 13) // fold in interrupt data
	k.St(7, 0, 8)
	k.Iret()

	prog := k.Assemble()
	devs := device.New(p.Seed ^ 0x53B)
	horizon := uint64(p.Scale) * 4
	devs.GenerateInterrupts(k.rng.Fork(), p.NProcs, uint64(p.Scale/4)+512, horizon, 0.3)
	devs.GenerateDMA(k.rng.Fork(), addrDMARing, 2, 16, uint64(p.Scale/3)+512, horizon)

	return &Workload{
		Name:  "sweb2005",
		Progs: replicate(p, prog),
		Devs:  devs,
		Init:  sharedInit(p.Seed^0x53B, cacheSlots*isa.LineWords),
	}
}

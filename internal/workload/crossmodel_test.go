package workload

import (
	"testing"

	"delorean/internal/bulksc"
	"delorean/internal/sim"
)

// TestRaceFreeKernelsModelIndependent: fft and lu are data-race-free
// (all cross-processor communication goes through barriers), so their
// final memory state must be identical under SC, RC and chunked
// execution — a strong cross-validation of all three machine models'
// functional semantics.
func TestRaceFreeKernelsModelIndependent(t *testing.T) {
	for _, name := range []string{"fft", "lu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p := testParams(4, 12000)
			cfg := testConfig(4)

			run := func(model sim.Model) uint64 {
				w := Get(name, p)
				m := sim.NewMachine(cfg, model, w.Progs, w.InitMem(), w.Devs)
				st := m.Run()
				if !st.Converged {
					t.Fatalf("%v: not converged", model)
				}
				return m.Mem.Hash()
			}
			sc := run(sim.SC)
			rc := run(sim.RC)

			w := Get(name, p)
			ccfg := cfg
			ccfg.ChunkSize = 700
			memory := w.InitMem()
			e := &bulksc.Engine{Cfg: ccfg, Progs: w.Progs, Mem: memory}
			st := e.Run()
			if !st.Converged {
				t.Fatal("chunked: not converged")
			}
			chunked := memory.Hash()

			if sc != rc || rc != chunked {
				t.Fatalf("race-free kernel diverged across models: SC=%x RC=%x chunked=%x", sc, rc, chunked)
			}
		})
	}
}

package workload

import (
	"delorean/internal/isa"
	"delorean/internal/mem"
)

// Synchronization density is the property these kernels must get right:
// in the real SPLASH-2 applications, critical sections and barriers are
// separated by thousands to tens of thousands of instructions, so most
// 1000–3000-instruction chunks commit without conflicts. Kernels are
// therefore structured so locks/barriers recur every ~1.5k–15k dynamic
// instructions (per their namesake's character), not per iteration.

// replicate builds one program (keyed off r15/r14 at run time) and uses
// it for every processor.
func replicate(p Params, prog *isa.Program) []*isa.Program {
	ps := make([]*isa.Program, p.NProcs)
	for i := range ps {
		ps[i] = prog
	}
	return ps
}

// sharedInit fills the shared region [addrShared, addrShared+n) with
// deterministic nonzero data (scene geometry, matrices, ...).
func sharedInit(seed uint64, n int) func(*mem.Memory) {
	return func(m *mem.Memory) {
		v := seed | 1
		for i := 0; i < n; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			m.Store(addrShared+uint32(i), v|1)
		}
	}
}

// finalReduction emits one guaranteed lock-protected global accumulation
// (so even tiny test-scale runs exercise cross-processor sharing).
func (k *kb) finalReduction(acc int) {
	k.Ldi(1, lockAddr(5))
	k.Lock(1, 3, k.lbl("lkf"))
	k.Ldi(2, histAddr(8))
	k.Ld(3, 2, 0)
	k.Add(3, 3, acc)
	k.St(2, 0, 3)
	k.Unlock(1)
}

// genBarnes models the Barnes-Hut force computation: per body, walks of
// a shared tree (read-only node visits) and private force computation;
// a lock-protected tree-node update only every 32 bodies — moderate,
// spread-out sharing.
func genBarnes(p Params) *Workload {
	const nodes = 256
	k := newKB(p, 0xBA53)
	body := 100
	k.Ldi(4, 0)
	k.Ldi(5, int64(k.iters(body)))
	k.Label("loop")
	// Visit three pseudo-random tree nodes (read-only).
	k.Mov(0, 4)
	k.Add(0, 0, 15)
	k.Muli(0, 0, 2654435761)
	k.Andi(0, 0, nodes-1)
	k.Muli(0, 0, isa.LineWords)
	k.Addi(0, 0, addrShared)
	k.Ld(6, 0, 0)
	k.Ld(7, 0, 1)
	k.Muli(1, 4, 40503)
	k.Andi(1, 1, nodes-1)
	k.Muli(1, 1, isa.LineWords)
	k.Addi(1, 1, addrShared)
	k.Ld(2, 1, 0)
	k.Add(6, 6, 2)
	// Private force computation.
	k.Work(80, 3)
	k.St(9, 0, 6)
	// Rare lock-protected node update (every 256 bodies, ~25k insts),
	// skewed per processor so updates don't burst in lockstep.
	skip := k.lbl("skip")
	k.Add(2, 4, 13)
	k.Andi(2, 2, 255)
	k.Bne(2, 10, skip)
	k.Andi(2, 4, 15)
	k.Muli(2, 2, gStride)
	k.Addi(2, 2, addrLocks)
	k.Lock(2, 3, k.lbl("lk"))
	k.Ld(3, 0, 2)
	k.Add(3, 3, 6)
	k.St(0, 2, 3)
	k.Unlock(2)
	k.Label(skip)
	k.Addi(4, 4, 1)
	k.Blt(4, 5, "loop")
	k.finalReduction(6)
	k.Halt()
	return &Workload{
		Name:  "barnes",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0xBA53, nodes*isa.LineWords),
	}
}

// genFMM models the fast multipole method: heavier private computation
// than barnes and rarer locking (every 64 interactions).
func genFMM(p Params) *Workload {
	const cells = 128
	k := newKB(p, 0xF33)
	body := 180
	k.Ldi(4, 0)
	k.Ldi(5, int64(k.iters(body)))
	k.Label("loop")
	k.Mov(0, 4)
	k.Muli(0, 0, 2246822519)
	k.Andi(0, 0, cells-1)
	k.Muli(0, 0, isa.LineWords)
	k.Addi(0, 0, addrShared)
	k.Ld(6, 0, 0)
	k.Ld(7, 0, 2)
	k.Work(160, 3)
	k.Add(6, 6, 3)
	k.Andi(1, 4, 255)
	k.Add(1, 1, 9)
	k.St(1, 0, 6)
	skip := k.lbl("skip")
	k.Add(2, 4, 13)
	k.Andi(2, 2, 255)
	k.Bne(2, 10, skip)
	k.Ldi(2, lockAddr(3))
	k.Lock(2, 3, k.lbl("lk"))
	k.Ld(3, 0, 1)
	k.Add(3, 3, 6)
	k.St(0, 1, 3)
	k.Unlock(2)
	k.Label(skip)
	k.Addi(4, 4, 1)
	k.Blt(4, 5, "loop")
	k.finalReduction(6)
	k.Halt()
	return &Workload{
		Name:  "fmm",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0xF33, cells*isa.LineWords),
	}
}

// genFFT models the six-step FFT: long private butterfly phases
// separated by all-to-all transposes through a shared matrix, with two
// barriers per phase — coarse-grained, phase-structured sharing.
func genFFT(p Params) *Workload {
	const chunk = 1024
	const phases = 6
	k := newKB(p, 0xFF7)
	k.Muli(6, 15, chunk)
	k.Addi(6, 6, addrShared)
	k.Ldi(7, 0)
	k.Ldi(5, phases)
	k.Label("phase")
	// Local butterflies (the bulk of each phase).
	k.Ldi(4, 0)
	k.Ldi(0, int64(k.p.Scale/(phases*14)))
	lb := k.lbl("bfly")
	k.Label(lb)
	k.Andi(1, 4, chunk-1)
	k.Add(1, 1, 9)
	k.Ld(2, 1, 0)
	k.Muli(2, 2, 3)
	k.Addi(2, 2, 7)
	k.St(1, 0, 2)
	k.Work(8, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, lb)
	// Publish my segment to the shared matrix.
	k.Ldi(4, 0)
	k.Ldi(0, chunk)
	pub := k.lbl("pub")
	k.Label(pub)
	k.Add(1, 6, 4)
	k.Add(2, 9, 4)
	k.Ld(3, 2, 0)
	k.St(1, 0, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, pub)
	k.barrier()
	// Transpose-read: strided gather across everyone's segments.
	k.Ldi(4, 0)
	k.Ldi(0, chunk)
	tr := k.lbl("tr")
	k.Label(tr)
	k.Mov(1, 4)
	k.Mul(1, 1, 14)
	k.Add(1, 1, 15)
	k.Add(1, 1, 7)
	k.Muli(2, 14, chunk)
	k.mod2(1, 2)
	k.Addi(1, 1, addrShared)
	k.Ld(3, 1, 0)
	k.Add(2, 9, 4)
	k.St(2, 0, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, tr)
	k.barrier()
	k.Addi(7, 7, 1)
	k.Blt(7, 5, "phase")
	k.Halt()
	return &Workload{
		Name:  "fft",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0xFF7, p.NProcs*chunk),
	}
}

// mod2 emits r[a] = r[a] mod r[b] via conditional subtraction (valid for
// a < 2b, which holds at its call sites).
func (k *kb) mod2(a, b int) {
	done := k.lbl("mod")
	k.Blt(a, b, done)
	k.Sub(a, a, b)
	k.Label(done)
}

// genLU models blocked dense LU: per step the owner factorizes a large
// pivot block, a barrier publishes it, and everyone updates private
// blocks against it — one-to-many read sharing separated by thousands of
// private instructions.
func genLU(p Params) *Workload {
	const blockWords = 256
	k := newKB(p, 0x111)
	stepCost := blockWords*7 + 10100
	steps := k.iters(stepCost)
	k.Ldi(7, 0)
	k.Ldi(13, 0) // rotating owner (SPLASH kernels take no interrupts)
	k.Ldi(5, int64(steps))
	k.Label("step")
	notOwner := k.lbl("notown")
	k.Bne(13, 15, notOwner)
	k.Andi(1, 7, 7)
	k.Muli(1, 1, blockWords)
	k.Addi(1, 1, addrShared2)
	k.Ldi(4, 0)
	k.Ldi(2, blockWords)
	fw := k.lbl("fw")
	k.Label(fw)
	k.Add(3, 1, 4)
	k.Ld(6, 3, 0)
	k.Muli(6, 6, 5)
	k.Addi(6, 6, 13)
	k.St(3, 0, 6)
	k.Addi(4, 4, 2)
	k.Blt(4, 2, fw)
	k.Label(notOwner)
	k.barrier()
	// Everyone reads the pivot block and updates private state.
	k.Andi(1, 7, 7)
	k.Muli(1, 1, blockWords)
	k.Addi(1, 1, addrShared2)
	k.Ldi(4, 0)
	k.Ldi(2, blockWords)
	up := k.lbl("up")
	k.Label(up)
	k.Add(3, 1, 4)
	k.Ld(6, 3, 0)
	k.Andi(0, 4, 255)
	k.Add(0, 9, 0)
	k.Ld(8, 0, 0)
	k.Add(8, 8, 6)
	k.St(0, 0, 8)
	k.Addi(4, 4, 1)
	k.Blt(4, 2, up)
	// Trailing-submatrix update: the bulk of each step.
	k.workLoop(10000, 3, 0)
	// Advance the rotating owner (no second barrier: the next pivot is a
	// different block, and laggards read the previous one).
	k.Addi(13, 13, 1)
	k.mod2(13, 14)
	k.Addi(7, 7, 1)
	k.Blt(7, 5, "step")
	k.Halt()
	init := func(m *mem.Memory) {
		sharedInit(p.Seed^0x111, 64)(m)
		v := p.Seed ^ 0x222 | 1
		for i := 0; i < 8*blockWords; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			m.Store(addrShared2+uint32(i), v|1)
		}
	}
	return &Workload{Name: "lu", Progs: replicate(p, k.Assemble()), Init: init}
}

// genOcean models the ocean grid solver: each processor sweeps its own
// rows reading neighbor boundary cells, one barrier per multi-thousand-
// instruction sweep.
func genOcean(p Params) *Workload {
	const rowWords = 256
	const rowsPerProc = 2
	k := newKB(p, 0x0CEA)
	sweepCost := rowsPerProc*rowWords*10 + 8100
	sweeps := k.iters(sweepCost)
	k.Muli(6, 15, rowsPerProc*rowWords)
	k.Addi(6, 6, addrShared)
	k.Ldi(7, 0)
	k.Ldi(5, int64(sweeps))
	k.Label("sweep")
	k.Ldi(4, 0)
	k.Ldi(0, rowsPerProc*rowWords)
	cell := k.lbl("cell")
	k.Label(cell)
	k.Add(1, 4, 6)
	k.Ld(2, 1, 0)
	k.Addi(3, 1, -rowWords)
	clamp := k.lbl("clamp")
	k.Ldi(8, addrShared)
	k.Bge(3, 8, clamp)
	k.Mov(3, 1)
	k.Label(clamp)
	k.Ld(8, 3, 0)
	k.Add(2, 2, 8)
	k.Muli(2, 2, 3)
	k.St(1, 0, 2)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, cell)
	// Column pass over the private grid copy (every 4th sweep): writes
	// strided by a full row (a power of two) map onto few L1 sets — the
	// access pattern behind the RARE speculative-overflow chunk
	// truncations the CS log exists for (paper §4.2.3).
	skipCol := k.lbl("skipcol")
	k.Andi(4, 7, 3)
	k.Bne(4, 10, skipCol)
	k.Ldi(4, 0)
	k.Ldi(0, 24)
	col := k.lbl("col")
	k.Label(col)
	k.Muli(1, 4, rowWords)
	k.Andi(1, 1, 0x3fff)
	k.Add(1, 1, 9)
	k.St(1, 0, 4)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, col)
	k.Label(skipCol)
	// Relaxation work between boundary exchanges.
	k.workLoop(7800, 3, 8)
	k.barrier()
	k.Addi(7, 7, 1)
	k.Blt(7, 5, "sweep")
	k.Halt()
	return &Workload{
		Name:  "ocean",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0x0CEA, p.NProcs*rowsPerProc*rowWords),
	}
}

// genCholesky models sparse Cholesky: a lock-free (fetch-add) task queue
// hands out multi-thousand-instruction column tasks; each task reads one
// shared column and updates another under a per-column lock.
func genCholesky(p Params) *Workload {
	const cols = 32
	const colWords = 64
	k := newKB(p, 0xC40)
	taskCost := colWords*6 + 40100
	totalTasks := k.iters(taskCost) * p.NProcs
	k.Ldi(5, int64(totalTasks))
	k.stagger(0)
	k.Label("loop")
	k.Ldi(0, addrTaskHead)
	k.Ldi(1, 1)
	k.Fadd(6, 0, 1)
	k.Bge(6, 5, "done")
	// Read the source column.
	k.Andi(0, 6, cols-1)
	k.Muli(0, 0, colWords)
	k.Addi(0, 0, addrShared)
	k.Ldi(4, 0)
	k.Ldi(2, colWords)
	rd := k.lbl("rd")
	k.Label(rd)
	k.Add(1, 0, 4)
	k.Ld(3, 1, 0)
	k.Add(7, 7, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 2, rd)
	// The actual factorization work (length varies per task).
	k.variableWork(36000, 6, 3, 1)
	// Update the destination column under its lock.
	k.Muli(0, 6, 7)
	k.Addi(0, 0, 3)
	k.Andi(0, 0, cols-1)
	k.Mov(8, 0)
	k.Andi(1, 8, 15)
	k.Muli(1, 1, gStride)
	k.Addi(1, 1, addrLocks)
	k.Lock(1, 3, k.lbl("lk"))
	k.Muli(0, 8, colWords)
	k.Addi(0, 0, addrShared)
	k.Ld(3, 0, 0)
	k.Add(3, 3, 7)
	k.St(0, 0, 3)
	k.Unlock(1)
	k.Jmp("loop")
	k.Label("done")
	k.Halt()
	return &Workload{
		Name:  "cholesky",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0xC40, cols*colWords),
	}
}

// genRadiosity models radiosity: finer tasks than cholesky (hotter queue)
// and scattered patch updates under per-patch locks.
func genRadiosity(p Params) *Workload {
	const patches = 64
	k := newKB(p, 0x3AD)
	taskCost := 25100
	totalTasks := k.iters(taskCost) * p.NProcs
	k.Ldi(5, int64(totalTasks))
	k.stagger(0)
	k.Label("loop")
	k.Ldi(0, addrTaskHead)
	k.Ldi(1, 1)
	k.Fadd(6, 0, 1)
	k.Bge(6, 5, "done")
	k.variableWork(21000, 6, 3, 1)
	k.Muli(0, 6, 2654435761)
	k.Andi(0, 0, patches-1)
	k.Andi(1, 0, 15)
	k.Muli(1, 1, gStride)
	k.Addi(1, 1, addrLocks)
	k.Lock(1, 3, k.lbl("lk"))
	k.Muli(2, 0, isa.LineWords)
	k.Addi(2, 2, addrShared)
	k.Ld(3, 2, 0)
	k.Addi(3, 3, 7)
	k.St(2, 0, 3)
	k.Unlock(1)
	k.Jmp("loop")
	k.Label("done")
	k.Halt()
	return &Workload{
		Name:  "radiosity",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0x3AD, patches*isa.LineWords),
	}
}

// genRadix models radix sort faithfully: each round builds a PRIVATE
// histogram (long, conflict-free), merges it into the global histogram
// in a short fetch-add burst, and scatters keys into a large shared
// array — bursty sharing around barriers, as the paper's radix shows.
func genRadix(p Params) *Workload {
	const buckets = 64
	const keysPerRound = 4096
	const scatterWords = 32768
	k := newKB(p, 0x3AD1C)
	roundCost := keysPerRound*16 + buckets*8 + 120
	rounds := k.iters(roundCost)
	k.Ldi(7, 0)
	k.Ldi(5, int64(rounds))
	k.Label("round")
	// Private histogram.
	k.Ldi(4, 0)
	k.Ldi(0, keysPerRound)
	h := k.lbl("hist")
	k.Label(h)
	k.Mov(1, 4)
	k.Add(1, 1, 7)
	k.Mul(1, 1, 15)
	k.Muli(1, 1, 2654435761)
	k.Andi(2, 1, buckets-1)
	k.Add(2, 2, 9) // private bucket
	k.Ld(3, 2, 0)
	k.Addi(3, 3, 1)
	k.St(2, 0, 3)
	k.Work(4, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, h)
	// Short global merge burst.
	k.Ldi(4, 0)
	k.Ldi(0, buckets)
	mg := k.lbl("merge")
	k.Label(mg)
	k.Add(1, 9, 4)
	k.Ld(2, 1, 0)
	k.St(1, 0, 10) // clear private bucket
	k.Addi(3, 4, addrHist)
	k.Fadd(2, 3, 2)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, mg)
	k.barrier()
	// Scatter into the shared array. After the (modelled) prefix sums,
	// each processor's keys land in its own contiguous destination range,
	// so scatter writes are disjoint across processors — as in the real
	// algorithm.
	k.Ldi(4, 0)
	k.Ldi(0, keysPerRound)
	k.Muli(6, 15, keysPerRound)
	k.Addi(6, 6, addrShared)
	s := k.lbl("scat")
	k.Label(s)
	k.Mov(1, 4)
	k.Add(1, 1, 7)
	k.Muli(1, 1, 40503)
	k.Add(2, 6, 4)
	k.St(2, 0, 1)
	k.Work(4, 3)
	k.Addi(4, 4, 1)
	k.Blt(4, 0, s)
	k.barrier()
	k.Addi(7, 7, 1)
	k.Blt(7, 5, "round")
	k.Halt()
	return &Workload{
		Name:  "radix",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0x3AD1C, scatterWords),
	}
}

// genRaytrace models raytrace's single hot task-queue lock: every ray
// acquires the same lock, and rays are long enough that the lock recurs
// roughly once per chunk — contention (and squashing) concentrates
// there, the behaviour behind the paper's Table 6 discussion.
func genRaytrace(p Params) *Workload {
	const scene = 512
	k := newKB(p, 0x3A7)
	rayCost := 30100
	totalRays := k.iters(rayCost) * p.NProcs
	k.Ldi(5, int64(totalRays))
	k.stagger(0)
	k.Label("loop")
	k.Ldi(1, lockAddr(0))
	k.Lock(1, 3, k.lbl("lk"))
	k.Ldi(0, addrTaskHead)
	k.Ld(6, 0, 0)
	k.Addi(2, 6, 1)
	k.St(0, 0, 2)
	k.Unlock(1)
	k.Bge(6, 5, "done")
	// Trace: read-only scene lookups + heavy private computation.
	k.Muli(0, 6, 2246822519)
	k.Andi(0, 0, scene-1)
	k.Addi(0, 0, addrShared)
	k.Ld(2, 0, 0)
	k.Muli(0, 6, 2654435761)
	k.Andi(0, 0, scene-1)
	k.Addi(0, 0, addrShared)
	k.Ld(3, 0, 0)
	k.Add(2, 2, 3)
	k.variableWork(26000, 6, 3, 0)
	k.Andi(1, 6, 511)
	k.Add(1, 1, 9)
	k.St(1, 0, 2)
	k.Jmp("loop")
	k.Label("done")
	k.Halt()
	return &Workload{
		Name:  "raytrace",
		Progs: replicate(p, k.Assemble()),
		Init:  sharedInit(p.Seed^0x3A7, scene),
	}
}

// genWaterNS models water-nsquared: long private molecular computation
// with a lock-protected global accumulation every 32 molecules (~5k
// instructions).
func genWaterNS(p Params) *Workload {
	return genWater(p, "water-ns", 0x3A11, 127, 120)
}

// genWaterSP models water-spatial: the most private kernel — reductions
// every 64 molecules of ~230 instructions each (~15k instructions).
func genWaterSP(p Params) *Workload {
	return genWater(p, "water-sp", 0x3A12, 255, 220)
}

func genWater(p Params, name string, salt uint64, reduceMask int64, work int) *Workload {
	k := newKB(p, salt)
	body := work + 30
	k.Ldi(4, 0)
	k.Ldi(5, int64(k.iters(body)))
	k.Label("loop")
	k.Andi(0, 4, 255)
	k.Add(0, 0, 9)
	k.Ld(6, 0, 0)
	k.Work(work, 3)
	k.Addi(6, 6, 17)
	k.St(0, 0, 6)
	skip := k.lbl("skip")
	k.Add(1, 4, 13)
	k.Andi(1, 1, reduceMask)
	k.Bne(1, 10, skip)
	k.Ldi(1, lockAddr(5))
	k.Lock(1, 3, k.lbl("lk"))
	k.Ldi(2, histAddr(8))
	k.Ld(3, 2, 0)
	k.Add(3, 3, 6)
	k.St(2, 0, 3)
	k.Unlock(1)
	k.Label(skip)
	k.Addi(4, 4, 1)
	k.Blt(4, 5, "loop")
	k.finalReduction(6)
	k.Halt()
	return &Workload{Name: name, Progs: replicate(p, k.Assemble())}
}

package workload

import (
	"delorean/internal/device"
	"delorean/internal/isa"
	"delorean/internal/rng"
)

// SysKernelProgram is the full-system smoke kernel: shared-memory work
// under a lock, periodic uncached I/O, DMA-ring reads, and an interrupt
// handler — every input-log kind in one small program. iters is the
// loop trip count (unlike the generated kernels, the dynamic
// instruction count is a fixed multiple of it).
//
// The assembly is pinned: the golden v3 fixture under
// internal/core/testdata was recorded from exactly this program, so any
// change here breaks byte-stability of saved recordings (the core
// package's golden test will catch it).
func SysKernelProgram(iters int) *isa.Program {
	a := isa.NewAsm()
	a.SetIntrVec("ih")
	a.LockInit()
	a.Ldi(1, 8)  // lock
	a.Ldi(2, 16) // counter
	a.Ldi(3, 0)  // i
	a.Ldi(4, int64(iters))
	a.Label("loop")
	// Periodic uncached I/O: every 32 iterations.
	a.Andi(5, 3, 31)
	a.Bne(5, 10, "noio")
	a.Iord(6, 2)
	a.Ldi(7, 0x800)
	a.Add(7, 7, 15)
	a.St(7, 0, 6) // persist the I/O value (proc-indexed slot)
	a.Label("noio")
	// Read the DMA ring and fold it into private state.
	a.Ldi(7, 0x900)
	a.Ld(8, 7, 0)
	a.Ldi(7, 0xa00)
	a.Add(7, 7, 15)
	a.Ld(9, 7, 0)
	a.Add(9, 9, 8)
	a.St(7, 0, 9)
	// Locked counter.
	a.Lock(1, 5, "l")
	a.Ld(6, 2, 0)
	a.Addi(6, 6, 1)
	a.St(2, 0, 6)
	a.Unlock(1)
	a.Addi(3, 3, 1)
	a.Blt(3, 4, "loop")
	a.Halt()
	// Interrupt handler: bump a per-proc counter in memory.
	a.Label("ih")
	a.Ldi(7, 0xb00)
	a.Add(7, 7, 15)
	a.Ld(8, 7, 0)
	a.Addi(8, 8, 1)
	a.St(7, 0, 8)
	a.Iret()
	return a.Assemble()
}

// genSysKernel builds the syskernel workload. Scale is the per-processor
// loop trip count, not an instruction target — the program is the fixed
// kernel SysKernelProgram pins, so callers that load a saved syskernel
// recording regenerate identical programs from (procs, scale) alone.
// Seed drives only the device schedules (interrupts and DMA traffic);
// it never changes the programs.
func genSysKernel(p Params) *Workload {
	prog := SysKernelProgram(p.Scale)
	devs := device.New(p.Seed ^ 0x5CE)
	horizon := uint64(p.Scale) * 16_000
	devs.GenerateInterrupts(rng.New(p.Seed^0x5CE).Fork(), p.NProcs, uint64(p.Scale)*30+512, horizon, 0.3)
	devs.GenerateDMA(rng.New(p.Seed^0x3CE).Fork(), addrDMARing, 4, 8, uint64(p.Scale)*45+512, horizon)
	return &Workload{Name: "syskernel", Progs: replicate(p, prog), Devs: devs}
}

// Known reports whether name is a registered workload — for callers
// validating untrusted input, where Get's panic-on-unknown contract is
// wrong.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Package workload provides the benchmark programs the evaluation runs:
// synthetic kernels reproducing the sharing patterns of the paper's
// SPLASH-2 applications, plus two commercial-like full-system workloads
// (sjbb2k, sweb2005) that exercise interrupts, uncached I/O and DMA.
//
// The kernels are real programs in the simulator's ISA — loads observe
// values stores produce, locks arbitrate, barriers synchronize — not
// address traces. Each is tuned to the qualitative character the paper
// reports for its namesake: radix's contended histogram, raytrace's
// single hot task-queue lock (squash concentration), lu's owner-computes
// blocks with barriers, water's mostly-private bodies with reduction
// locks, and so on. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"sort"

	"delorean/internal/device"
	"delorean/internal/isa"
	"delorean/internal/mem"
	"delorean/internal/rng"
)

// Params configures workload generation.
type Params struct {
	NProcs int
	// Scale is the approximate dynamic instruction count per processor.
	Scale int
	// Seed drives layout and access randomization (and device schedules
	// for the commercial workloads).
	Seed uint64
}

// DefaultParams returns an 8-processor configuration at a laptop-friendly
// scale.
func DefaultParams() Params { return Params{NProcs: 8, Scale: 100_000, Seed: 1} }

// Workload is a generated benchmark instance.
type Workload struct {
	Name  string
	Progs []*isa.Program
	// Devs is non-nil for the full-system workloads.
	Devs *device.Devices
	// Init seeds initial memory contents (the system checkpoint state).
	Init func(*mem.Memory)
}

// InitMem returns a memory populated with the workload's initial data.
func (w *Workload) InitMem() *mem.Memory {
	m := mem.New()
	if w.Init != nil {
		w.Init(m)
	}
	return m
}

// Shared address map (word addresses). Layout matters to the Bulk
// signatures: synchronization globals (barrier generation and flags,
// locks, the task-queue head) each live on their own cache line at a
// large ODD line stride, so every global projects to a distinct bit in
// every signature bank — a chunk touching one lock never aliases with a
// chunk touching another global or a dense array region. Private regions
// are spaced ≥ 2^18 words apart for the same reason.
const (
	gBase   = 0x400000             // globals base (word address)
	gStride = 1027 * isa.LineWords // one global per line, odd line stride

	addrBarrier  = gBase              // generation word; flags follow per-proc
	addrTaskHead = gBase + 37*gStride // shared task-queue head index
	addrLocks    = gBase + 44*gStride // 16 spread locks
	addrHist     = gBase + 70*gStride // shared histogram / reduction cells
	addrShared   = 0x10000
	addrShared2  = 0x80000
	addrDMARing  = 0x900
	privBase     = 0x1000000
	privStride   = 0x80000
)

func lockAddr(i int) int64 { return addrLocks + int64(i%16)*gStride }
func histAddr(b int) int64 { return addrHist + int64(b) }

// barrierFlag returns the arrival-flag word of processor p.
func barrierFlagStride() int64 { return gStride }

type generator func(Params) *Workload

var registry = map[string]generator{
	"barnes":    genBarnes,
	"cholesky":  genCholesky,
	"fft":       genFFT,
	"fmm":       genFMM,
	"lu":        genLU,
	"ocean":     genOcean,
	"radiosity": genRadiosity,
	"radix":     genRadix,
	"raytrace":  genRaytrace,
	"water-ns":  genWaterNS,
	"water-sp":  genWaterSP,
	"sjbb2k":    genSJBB,
	"sweb2005":  genSWeb,
	// syskernel is the pinned full-system smoke kernel (see syskernel.go).
	// Deliberately absent from Names(): it is a fixture/serving workload,
	// not part of the paper's benchmark suite, so the experiment drivers
	// never sweep it.
	"syskernel": genSysKernel,
}

// SplashNames returns the SPLASH-2-like kernel names in the paper's
// figure order.
func SplashNames() []string {
	return []string{
		"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
		"radiosity", "radix", "raytrace", "water-ns", "water-sp",
	}
}

// CommercialNames returns the full-system workloads.
func CommercialNames() []string { return []string{"sjbb2k", "sweb2005"} }

// Names returns every workload name, SPLASH-2 first.
func Names() []string {
	return append(SplashNames(), CommercialNames()...)
}

// All returns every registered name sorted (for validation).
func All() []string {
	var ns []string
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Get generates the named workload. It panics on unknown names —
// callers pass compile-time constants or names from Names().
func Get(name string, p Params) *Workload {
	g, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown workload %q", name))
	}
	if p.NProcs <= 0 || p.Scale <= 0 {
		panic(fmt.Sprintf("workload: bad params %+v", p))
	}
	return g(p)
}

// kb (kernel builder) wraps the assembler with the conventions every
// kernel shares: r15 = proc ID, r14 = processor count, r10 = zero
// (LockInit), r9 = private base address.
type kb struct {
	*isa.Asm
	p      Params
	rng    *rng.Source
	labels int
}

func newKB(p Params, salt uint64) *kb {
	k := &kb{Asm: isa.NewAsm(), p: p, rng: rng.New(p.Seed ^ salt)}
	k.LockInit()
	// r9 <- private base for this processor: privBase + proc*privStride.
	k.Muli(9, 15, privStride)
	k.Addi(9, 9, privBase)
	// r13 <- per-processor skew. Real applications desynchronize
	// naturally (data-dependent work); identical synthetic kernels would
	// otherwise hit every lock and queue in lockstep bursts, a resonance
	// that grossly exaggerates conflict rates. Kernels fold r13 into
	// periodic conditions and initial stagger loops. (LU repurposes r13
	// as its rotating owner and opts out.)
	k.Muli(13, 15, 1777)
	return k
}

// stagger emits an initial desynchronization loop proportional to the
// processor ID (~0–12k instructions for 8 processors), using scratch ra.
func (k *kb) stagger(ra int) {
	l := k.lbl("skew")
	k.Ldi(ra, 0)
	k.Label(l)
	k.Addi(ra, ra, 3)
	k.Blt(ra, 13, l)
}

// variableWork emits a private-computation loop whose length is
// base plus a hash of the value in rid (task-length variance, ~0–8k
// instructions), clobbering ra and rb.
func (k *kb) variableWork(base, rid, ra, rb int) {
	k.Muli(ra, rid, 2654435761)
	k.Andi(ra, ra, 8191)
	k.Addi(ra, ra, int64(base))
	l := k.lbl("vw")
	k.Ldi(rb, 0)
	k.Label(l)
	k.Addi(rb, rb, 3)
	k.Blt(rb, ra, l)
}

// lbl returns a fresh unique label suffix.
func (k *kb) lbl(prefix string) string {
	k.labels++
	return fmt.Sprintf("%s%d", prefix, k.labels)
}

// barrier emits a flag-based barrier over all processors using r0..r3
// and r8 as scratch (callers must not hold live values there).
//
// Layout at addrBarrier: word 0 is the generation; the arrival flag of
// processor p lives on its own cache line at addrBarrier + (1+p) lines.
// Each arriver writes only its own flag line; processor 0 gathers the
// flags and bumps the generation; everyone else spins on the generation.
// Under chunked execution this matters enormously compared to a central
// fetch-add counter: arrivals touch disjoint lines, so arriving chunks
// never squash each other — each processor is squashed at most once per
// barrier (by the generation bump, or for processor 0 by flag arrivals).
// SPLASH-2's own barrier implementations are similarly
// contention-conscious.
func (k *kb) barrier() {
	gen := int64(addrBarrier)
	k.Ldi(0, gen)
	k.Ld(3, 0, 0)   // r3 = current generation
	k.Addi(3, 3, 1) // r3 = target generation
	// Publish my arrival: flag[p] = target.
	k.Addi(1, 15, 1)
	k.Muli(1, 1, barrierFlagStride())
	k.Addi(1, 1, gen)
	k.St(1, 0, 3)
	done := k.lbl("bardone")
	notZero := k.lbl("barnz")
	k.Bne(15, 10, notZero)
	// Processor 0: gather all flags, then bump the generation.
	k.Ldi(2, 1) // q
	gather := k.lbl("bargather")
	k.Label(gather)
	k.Addi(1, 2, 1)
	k.Muli(1, 1, barrierFlagStride())
	k.Addi(1, 1, gen)
	wait := k.lbl("barwait")
	k.Label(wait)
	k.Ld(8, 1, 0)
	k.Blt(8, 3, wait)
	k.Addi(2, 2, 1)
	k.Blt(2, 14, gather)
	k.Ldi(0, gen)
	k.St(0, 0, 3) // generation = target
	k.Jmp(done)
	k.Label(notZero)
	// Everyone else: spin on the generation.
	k.Ldi(0, gen)
	spin := k.lbl("barspin")
	k.Label(spin)
	k.Ld(8, 0, 0)
	k.Blt(8, 3, spin)
	k.Label(done)
}

// workLoop emits a compact private-computation loop of roughly n dynamic
// instructions using the two scratch registers (3 instructions per
// iteration). Large stretches of "computation" use this instead of
// unrolled Work so program sizes stay modest.
func (k *kb) workLoop(n, ra, rb int) {
	if n < 9 {
		k.Work(n, ra)
		return
	}
	l := k.lbl("wk")
	k.Ldi(ra, 0)
	k.Ldi(rb, int64(n/3))
	k.Label(l)
	k.Addi(ra, ra, 3)
	k.Blt(ra, rb, l)
}

// iters computes a loop count so the kernel body (approximately
// bodyInsts dynamic instructions per iteration) totals Scale
// instructions.
func (k *kb) iters(bodyInsts int) int {
	n := k.p.Scale / bodyInsts
	if n < 4 {
		n = 4
	}
	return n
}

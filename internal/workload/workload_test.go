package workload

import (
	"testing"

	"delorean/internal/bulksc"
	"delorean/internal/sim"
)

func testParams(n, scale int) Params {
	return Params{NProcs: n, Scale: scale, Seed: 7}
}

func testConfig(n int) sim.Config {
	c := sim.Default8()
	c.NProcs = n
	c.MaxInsts = 50_000_000
	return c
}

func TestRegistryComplete(t *testing.T) {
	if len(Names()) != 13 {
		t.Fatalf("Names() has %d entries, want 13", len(Names()))
	}
	if len(SplashNames()) != 11 {
		t.Fatalf("SplashNames() has %d entries, want 11", len(SplashNames()))
	}
	// The registry additionally holds syskernel, which Names() hides from
	// the benchmark sweeps.
	if len(All()) != 14 {
		t.Fatalf("registry has %d entries, want 14", len(All()))
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate workload %q", n)
		}
		seen[n] = true
	}
	if seen["syskernel"] {
		t.Fatal("syskernel leaked into Names(); the experiment sweeps would pick it up")
	}
	for _, n := range append(Names(), "syskernel") {
		if !Known(n) {
			t.Fatalf("Known(%q) = false for a registered workload", n)
		}
	}
	if Known("quicksort") {
		t.Fatal(`Known("quicksort") = true`)
	}
}

// TestSysKernelPinned: syskernel's programs must be a pure function of
// (procs, scale) — Seed moves only the device schedules — and must be
// exactly SysKernelProgram(scale) replicated, because saved recordings
// (the golden fixture, server uploads) regenerate programs from the
// spec alone.
func TestSysKernelPinned(t *testing.T) {
	w := Get("syskernel", Params{NProcs: 4, Scale: 130, Seed: 7})
	if len(w.Progs) != 4 {
		t.Fatalf("%d programs, want 4", len(w.Progs))
	}
	ref := SysKernelProgram(130)
	for p, prog := range w.Progs {
		if len(prog.Insts) != len(ref.Insts) {
			t.Fatalf("proc %d: program length %d, want %d", p, len(prog.Insts), len(ref.Insts))
		}
		for i := range prog.Insts {
			if prog.Insts[i] != ref.Insts[i] {
				t.Fatalf("proc %d instruction %d differs from SysKernelProgram", p, i)
			}
		}
	}
	if w.Devs == nil || len(w.Devs.Interrupts) == 0 || len(w.Devs.DMA) == 0 {
		t.Fatal("syskernel has no device activity")
	}
	other := Get("syskernel", Params{NProcs: 4, Scale: 130, Seed: 99})
	for i := range other.Progs[0].Insts {
		if other.Progs[0].Insts[i] != ref.Insts[i] {
			t.Fatalf("Seed changed instruction %d — programs must not depend on Seed", i)
		}
	}
}

func TestUnknownNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Get("quicksort", testParams(4, 1000))
}

func TestAllWorkloadsRunOnSC(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := Get(name, testParams(4, 6000))
			if len(w.Progs) != 4 {
				t.Fatalf("%d programs", len(w.Progs))
			}
			m := sim.NewMachine(testConfig(4), sim.SC, w.Progs, w.InitMem(), w.Devs)
			st := m.Run()
			if !st.Converged {
				t.Fatalf("did not converge: %d insts", st.Insts)
			}
			if st.Insts < 4*1000 {
				t.Fatalf("suspiciously few instructions: %d", st.Insts)
			}
			if st.MemOps == 0 {
				t.Fatal("no memory operations")
			}
		})
	}
}

func TestAllWorkloadsRunChunked(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := Get(name, testParams(4, 6000))
			cfg := testConfig(4)
			cfg.ChunkSize = 500
			e := &bulksc.Engine{Cfg: cfg, Progs: w.Progs, Mem: w.InitMem(), Devs: w.Devs}
			st := e.Run()
			if !st.Converged {
				t.Fatalf("did not converge: %d insts, %d wasted\n%s", st.Insts, st.WastedInsts, e.DebugState())
			}
			if st.Chunks == 0 {
				t.Fatal("no chunks committed")
			}
		})
	}
}

func TestScaleControlsInstructionCount(t *testing.T) {
	// Kernels without barriers: at small scales barrier spin time (which
	// retires instructions) would swamp the scale knob. Scales are above
	// the per-task minimums.
	for _, name := range []string{"barnes", "fmm", "water-ns", "water-sp"} {
		small := Get(name, testParams(4, 20000))
		big := Get(name, testParams(4, 80000))
		cfg := testConfig(4)
		mSmall := sim.NewMachine(cfg, sim.RC, small.Progs, small.InitMem(), small.Devs)
		stS := mSmall.Run()
		mBig := sim.NewMachine(cfg, sim.RC, big.Progs, big.InitMem(), big.Devs)
		stB := mBig.Run()
		if !stS.Converged || !stB.Converged {
			t.Fatalf("%s: not converged", name)
		}
		if stB.Insts < 2*stS.Insts {
			t.Errorf("%s: scale 4x but insts %d -> %d", name, stS.Insts, stB.Insts)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, name := range Names() {
		a := Get(name, testParams(4, 5000))
		b := Get(name, testParams(4, 5000))
		if len(a.Progs[0].Insts) != len(b.Progs[0].Insts) {
			t.Fatalf("%s: program lengths differ", name)
		}
		for i := range a.Progs[0].Insts {
			if a.Progs[0].Insts[i] != b.Progs[0].Insts[i] {
				t.Fatalf("%s: instruction %d differs", name, i)
			}
		}
	}
}

func TestCommercialWorkloadsHaveDevices(t *testing.T) {
	for _, name := range CommercialNames() {
		w := Get(name, testParams(4, 8000))
		if w.Devs == nil {
			t.Fatalf("%s has no device model", name)
		}
		if len(w.Devs.Interrupts) == 0 {
			t.Fatalf("%s has no interrupts scheduled", name)
		}
		if len(w.Devs.DMA) == 0 {
			t.Fatalf("%s has no DMA scheduled", name)
		}
	}
}

func TestSplashWorkloadsHaveNoDevices(t *testing.T) {
	// The paper evaluates SPLASH-2 without system references.
	for _, name := range SplashNames() {
		if Get(name, testParams(2, 3000)).Devs != nil {
			t.Fatalf("%s unexpectedly has devices", name)
		}
	}
}

func TestWorkloadsShareData(t *testing.T) {
	// Every kernel must actually produce cross-processor dependences —
	// otherwise it tests nothing. Detect via coherence traffic.
	for _, name := range Names() {
		w := Get(name, testParams(4, 6000))
		m := sim.NewMachine(testConfig(4), sim.SC, w.Progs, w.InitMem(), w.Devs)
		st := m.Run()
		if !st.Converged {
			t.Fatalf("%s: not converged", name)
		}
		if m.MemSys().C2CTransfers == 0 && m.MemSys().Upgrades == 0 {
			t.Errorf("%s: no coherence traffic — no actual sharing?", name)
		}
	}
}

func TestRaytraceContentionConcentrated(t *testing.T) {
	// raytrace's distinguishing feature: a single hot lock. Verify its
	// chunked run squashes more than water-sp's (the most private
	// kernel) by a wide margin.
	cfg := testConfig(4)
	cfg.ChunkSize = 500
	run := func(name string) bulksc.Stats {
		w := Get(name, testParams(4, 12000))
		e := &bulksc.Engine{Cfg: cfg, Progs: w.Progs, Mem: w.InitMem()}
		return e.Run()
	}
	ray := run("raytrace")
	water := run("water-sp")
	if !ray.Converged || !water.Converged {
		t.Fatal("not converged")
	}
	if ray.Squashes <= water.Squashes {
		t.Errorf("raytrace squashes (%d) not above water-sp (%d)", ray.Squashes, water.Squashes)
	}
}

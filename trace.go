package delorean

import (
	"errors"
	"fmt"
	"io"

	"delorean/internal/bulksc"
	"delorean/internal/core"
	"delorean/internal/trace"
)

// ExecTrace is a captured execution timeline: chunk lifecycles per
// processor, commits and squashes in global order, arbiter contention,
// recorder log growth, and end-of-run counters. Capture one with
// RecordTraced or ReplayTraced. Tracing is observation-only — a traced
// run produces byte-identical recordings, replays and statistics to an
// untraced one.
type ExecTrace struct {
	sink *trace.Sink
}

// TraceCounter is one named end-of-run metric from a traced run.
type TraceCounter struct {
	Name  string
	Value float64
}

// WritePerfetto renders the timeline as chrome trace_event JSON,
// loadable in ui.perfetto.dev or chrome://tracing: chunk execution as
// slices on per-processor tracks, commits/squashes as instants, arbiter
// occupancy and log growth as counter tracks. One simulated cycle maps
// to one microsecond on the viewer's time axis.
func (t *ExecTrace) WritePerfetto(w io.Writer) error {
	return t.sink.WriteTraceEvent(w)
}

// Counters returns the run's end-of-run counter snapshot (cycle and
// instruction totals, squash and truncation breakdowns, stall causes,
// arbiter contention), sorted by name.
func (t *ExecTrace) Counters() []TraceCounter {
	if t == nil || t.sink == nil || t.sink.Counters == nil {
		return nil
	}
	snap := t.sink.Counters.Snapshot()
	out := make([]TraceCounter, len(snap))
	for i, c := range snap {
		out[i] = TraceCounter{Name: c.Name, Value: c.Value}
	}
	return out
}

// Counter returns one named counter's value (0 when absent).
func (t *ExecTrace) Counter(name string) float64 {
	if t == nil || t.sink == nil || t.sink.Counters == nil {
		return 0
	}
	return t.sink.Counters.Get(name)
}

// Events returns the number of timeline events captured.
func (t *ExecTrace) Events() int {
	if t == nil || t.sink == nil {
		return 0
	}
	return len(t.sink.Events())
}

// RecordTraced is Record with timeline capture: it additionally returns
// the recording run's ExecTrace. The trace is also retained on the
// Recording (see Trace).
func RecordTraced(cfg Config, mode Mode, w *Workload) (*Recording, *ExecTrace, error) {
	m := cfg.machine()
	sink := trace.NewSink(m.NProcs)
	memory := w.InitMem()
	rec, err := core.Record(m, coreMode(mode), w.Progs, memory, w.Devs, core.RecordOptions{
		StratifyMax:     cfg.Stratify,
		ExactConflicts:  cfg.ExactConflicts,
		CheckpointEvery: cfg.CheckpointEvery,
		Parallel:        cfg.SimParallel,
		Trace:           sink,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("delorean: record %s: %w", w.Name, err)
	}
	return &Recording{rec: rec, cfg: cfg, progs: w.Progs}, &ExecTrace{sink: sink}, nil
}

// Trace returns the recording run's execution trace when the recording
// was made with RecordTraced (nil otherwise; loaded recordings never
// carry one — traces are host-side and not serialized).
func (r *Recording) Trace() *ExecTrace {
	if r.rec.Trace == nil {
		return nil
	}
	return &ExecTrace{sink: r.rec.Trace}
}

// ReplayTraced is Replay with timeline capture: it additionally returns
// the replay run's ExecTrace. A non-deterministic replay's trace ends
// with a divergence marker locating the first detected divergence.
//
// ReplayTraced is safe to call concurrently on the same Recording (see
// the Recording concurrency contract): each call allocates a private
// trace sink, so concurrent traced replays never share event buffers.
func (r *Recording) ReplayTraced(opts ReplayWith) (ReplayResult, *ExecTrace, error) {
	sink := trace.NewSink(r.rec.NProcs)
	ro := core.ReplayOptions{
		UseStratified:  opts.UseStratified,
		ExactConflicts: r.cfg.ExactConflicts,
		Parallel:       r.cfg.SimParallel,
		ReplayParallel: opts.Parallel,
		Trace:          sink,
		Ctx:            opts.Ctx,
	}
	if opts.PerturbSeed != 0 {
		ro.Perturb = bulksc.DefaultPerturb(opts.PerturbSeed)
	}
	tr := &ExecTrace{sink: sink}
	res, err := core.Replay(r.rec, core.ReplayConfig(r.cfg.machine()), r.progs, ro)
	if err != nil {
		var div *core.DivergenceError
		if errors.As(err, &div) {
			return ReplayResult{Deterministic: false, Stats: execStats(res.Stats),
				DivergentInterval: div.Interval, Divergence: divergenceInfo(div)}, tr, nil
		}
		return ReplayResult{}, nil, fmt.Errorf("delorean: replay: %w", err)
	}
	return ReplayResult{Deterministic: res.Matches(r.rec), Stats: execStats(res.Stats),
		DivergentInterval: -1}, tr, nil
}
